// Package router implements the question-routing layer that the
// paper's expert finder plugs into (§1, §5: the CrowdSearcher
// platform): a stream of expertise needs is dispatched to small
// crowds of top-ranked experts, while respecting the social contract
// of crowd-searching — contacts answer out of goodwill, so each
// expert has a bounded number of open questions and rests between
// assignments.
//
// The router is deliberately independent from how experts are ranked:
// it consumes any Ranker, so it works with the paper's social
// vector-space finder, the Balog baselines, or a stub in tests.
package router

import (
	"fmt"
	"sort"
)

// Ranker produces a ranked expert list for an expertise need; the
// paper's Finder satisfies this shape through a small adapter.
type Ranker interface {
	Rank(need string) ([]RankedExpert, error)
}

// RankedExpert is one candidate with their expertise score.
type RankedExpert struct {
	Name  string
	Score float64
}

// RankerFunc adapts a function to the Ranker interface.
type RankerFunc func(need string) ([]RankedExpert, error)

// Rank implements Ranker.
func (f RankerFunc) Rank(need string) ([]RankedExpert, error) { return f(need) }

// Config tunes the routing policy. The zero value selects the
// defaults in parentheses.
type Config struct {
	// CrowdSize is the number of experts asked per question (3).
	CrowdSize int
	// MaxOpen is the maximum number of unanswered questions a single
	// expert may hold (2).
	MaxOpen int
	// Cooldown is how many subsequent assignments an expert sits out
	// after completing a question (1); it spreads load across the
	// candidate pool instead of hammering the top expert.
	Cooldown int
	// MinScoreRatio drops experts scoring below this fraction of the
	// question's best expert (0.1): a barely-matching contact is not
	// worth bothering.
	MinScoreRatio float64
}

func (c Config) withDefaults() Config {
	if c.CrowdSize == 0 {
		c.CrowdSize = 3
	}
	if c.MaxOpen == 0 {
		c.MaxOpen = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	if c.MinScoreRatio == 0 {
		c.MinScoreRatio = 0.1
	}
	return c
}

// Assignment is a routed question.
type Assignment struct {
	ID       int64
	Need     string
	Crowd    []string // the experts asked, best first
	Partial  bool     // fewer experts than CrowdSize were available
	Fallback bool     // nobody was available: route to a generic crowd platform
}

// Router dispatches questions to expert crowds. It is not safe for
// concurrent use; callers serialize access (a single dispatcher
// goroutine is the intended shape).
type Router struct {
	ranker Ranker
	cfg    Config

	nextID   int64
	open     map[int64]*Assignment
	load     map[string]int // open questions per expert
	cooldown map[string]int // assignments to skip per expert
	answered map[string]int // lifetime answered count per expert
}

// New returns a Router over the given ranker.
func New(ranker Ranker, cfg Config) *Router {
	return &Router{
		ranker:   ranker,
		cfg:      cfg.withDefaults(),
		open:     make(map[int64]*Assignment),
		load:     make(map[string]int),
		cooldown: make(map[string]int),
		answered: make(map[string]int),
	}
}

// Ask routes one question to a crowd of available experts. When no
// expert is available the assignment comes back with Fallback set —
// the caller should use a generic crowdsourcing platform instead, the
// paper's framing of when anonymous crowds beat social ones.
func (r *Router) Ask(need string) (Assignment, error) {
	ranked, err := r.ranker.Rank(need)
	if err != nil {
		return Assignment{}, fmt.Errorf("router: ranking %q: %w", need, err)
	}

	var crowd []string
	var best float64
	if len(ranked) > 0 {
		best = ranked[0].Score
	}
	for _, e := range ranked {
		if len(crowd) == r.cfg.CrowdSize {
			break
		}
		if e.Score < best*r.cfg.MinScoreRatio {
			break // the remaining experts barely match
		}
		if r.cooldown[e.Name] > 0 {
			continue
		}
		if r.load[e.Name] >= r.cfg.MaxOpen {
			continue
		}
		crowd = append(crowd, e.Name)
	}

	r.nextID++
	a := Assignment{
		ID:       r.nextID,
		Need:     need,
		Crowd:    crowd,
		Partial:  len(crowd) > 0 && len(crowd) < r.cfg.CrowdSize,
		Fallback: len(crowd) == 0,
	}
	for _, name := range crowd {
		r.load[name]++
	}
	// Cooldowns tick down once per routed question.
	for name, c := range r.cooldown {
		if c <= 1 {
			delete(r.cooldown, name)
		} else {
			r.cooldown[name] = c - 1
		}
	}
	if !a.Fallback {
		r.open[a.ID] = &a
	}
	return a, nil
}

// Complete records that an expert answered (or declined) an open
// question, freeing their budget slot and starting their cooldown.
func (r *Router) Complete(id int64, expert string) error {
	a, ok := r.open[id]
	if !ok {
		return fmt.Errorf("router: unknown or closed assignment %d", id)
	}
	found := false
	// Build a fresh slice: the caller may still hold the Assignment
	// returned by Ask, whose Crowd shares this backing array.
	remaining := make([]string, 0, len(a.Crowd))
	for _, name := range a.Crowd {
		if name == expert && !found {
			found = true
			continue
		}
		remaining = append(remaining, name)
	}
	if !found {
		return fmt.Errorf("router: expert %q is not assigned to question %d", expert, id)
	}
	a.Crowd = remaining
	if r.load[expert] > 0 {
		r.load[expert]--
	}
	r.cooldown[expert] = r.cfg.Cooldown
	r.answered[expert]++
	if len(a.Crowd) == 0 {
		delete(r.open, id)
	}
	return nil
}

// OpenQuestions returns the number of assignments with pending
// answers.
func (r *Router) OpenQuestions() int { return len(r.open) }

// Load returns the number of open questions held by an expert.
func (r *Router) Load(expert string) int { return r.load[expert] }

// Answered returns the lifetime number of questions an expert
// completed.
func (r *Router) Answered(expert string) int { return r.answered[expert] }

// Leaderboard returns experts by lifetime answered count, descending
// (ties by name), the engagement view a crowd-searching UI shows.
func (r *Router) Leaderboard() []RankedExpert {
	out := make([]RankedExpert, 0, len(r.answered))
	for name, n := range r.answered {
		out = append(out, RankedExpert{Name: name, Score: float64(n)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}
