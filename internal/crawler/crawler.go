// Package crawler models the Resource Extraction step of the analysis
// flow (paper §2.3, Fig. 4): collecting social data through the
// platforms' APIs, subject to the real-world constraints the paper
// documents — user privacy settings (only 80 of the 13k Facebook
// friends allowed profile access, §3.3.3), per-container result caps
// ("for each resource container we retrieved the most recent
// resources"), and API call budgets.
//
// The crawler takes a "remote" social graph (the ground truth living
// on the platforms) and extracts the partial view an application with
// a given access policy would actually obtain. Evaluating the expert
// finder on crawls of decreasing completeness quantifies how robust
// the method is to the access limits every third-party application
// faces — the paper notes that platform owners, who see everything,
// are strictly better positioned (§3.7).
package crawler

import (
	"math/rand"

	"expertfind/internal/socialgraph"
)

// Policy captures the access constraints of a crawl.
type Policy struct {
	// ProfileAccessProb is the probability that a non-candidate
	// user's privacy settings allow reading their profile and
	// activities (the candidates granted authorization tokens, so
	// their own data is always accessible). The paper measured ≈0.6%
	// for Facebook friends; followed accounts are typically public.
	ProfileAccessProb float64
	// MaxPerContainer caps how many resources are retrieved per
	// group or page (the "most recent resources" cap). Zero means no
	// cap.
	MaxPerContainer int
	// MaxAPICalls bounds the total number of API calls; one call
	// retrieves one user (profile + stream) or one container feed.
	// Zero means unlimited.
	MaxAPICalls int
	// Seed drives the privacy draws, making crawls reproducible.
	Seed int64
}

// FullAccess is the policy of a platform owner: everything visible.
var FullAccess = Policy{ProfileAccessProb: 1}

// Stats reports what a crawl did.
type Stats struct {
	APICalls            int
	UsersVisited        int
	UsersDenied         int
	ContainersTruncated int
	ResourcesCopied     int
	ResourcesSkipped    int
}

// Crawl extracts from remote the subgraph visible under policy,
// starting from the candidate pool. The crawled graph mirrors the
// remote user table (same UserIDs), so ground truth defined on remote
// users applies unchanged; resource and container IDs are fresh.
func Crawl(remote *socialgraph.Graph, policy Policy) (*socialgraph.Graph, Stats) {
	c := &crawl{
		remote:       remote,
		policy:       policy,
		rng:          rand.New(rand.NewSource(policy.Seed + 1)),
		out:          socialgraph.New(),
		resourceMap:  make(map[socialgraph.ResourceID]socialgraph.ResourceID),
		containerMap: make(map[socialgraph.ContainerID]socialgraph.ContainerID),
		visited:      make(map[socialgraph.UserID]bool),
	}
	c.run()
	return c.out, c.stats
}

type crawl struct {
	remote *socialgraph.Graph
	policy Policy
	rng    *rand.Rand
	out    *socialgraph.Graph
	stats  Stats

	resourceMap  map[socialgraph.ResourceID]socialgraph.ResourceID
	containerMap map[socialgraph.ContainerID]socialgraph.ContainerID
	visited      map[socialgraph.UserID]bool
}

// spendCall consumes one API call if the budget allows it.
func (c *crawl) spendCall() bool {
	if c.policy.MaxAPICalls > 0 && c.stats.APICalls >= c.policy.MaxAPICalls {
		return false
	}
	c.stats.APICalls++
	return true
}

func (c *crawl) run() {
	remote := c.remote
	for _, u := range remote.Users() {
		c.out.AddUser(u.Name, u.Candidate)
	}
	candidates := remote.Candidates()

	// Phase 1: visit the authorized candidates, then the users they
	// follow (friends included — whether the matching later uses
	// friend content is the traversal's decision; the crawler mirrors
	// the relationship structure it can see). Visiting retrieves the
	// profile and the container feeds.
	var accessible []socialgraph.UserID
	for _, u := range candidates {
		if c.visitUser(u, true) {
			accessible = append(accessible, u)
		}
	}
	for _, u := range candidates {
		for _, net := range socialgraph.Networks {
			for _, v := range remote.Followed(u, net, true) {
				c.out.Follows(u, v, net)
				if remote.FollowsEdge(v, u, net) {
					c.out.Follows(v, u, net)
				}
				if c.visitUser(v, false) {
					accessible = append(accessible, v)
				}
			}
		}
	}
	// Phase 2: follow edges among visited non-candidates, so
	// distance-2 profile paths (followed-of-followed) survive.
	for v := range c.visited {
		for _, net := range socialgraph.Networks {
			for _, w := range remote.Followed(v, net, true) {
				if c.visited[w] && !c.out.FollowsEdge(v, w, net) {
					c.out.Follows(v, w, net)
				}
			}
		}
	}
	// Phase 3: streams — owned, created and annotated resources of
	// every accessible user. This runs after all container feeds are
	// in, so stream items that also sit in a crawled feed reuse the
	// feed copy instead of duplicating.
	for _, u := range accessible {
		c.copyStreams(u)
	}
}

// visitUser performs the access check and retrieves the user's
// profile and container feeds. It reports whether the user's data is
// accessible.
func (c *crawl) visitUser(u socialgraph.UserID, authorized bool) bool {
	if c.visited[u] {
		return false // already handled (or denied) once
	}
	c.visited[u] = true
	if !authorized && c.rng.Float64() >= c.policy.ProfileAccessProb {
		c.stats.UsersDenied++
		return false
	}
	if !c.spendCall() {
		return false
	}
	c.stats.UsersVisited++
	remote := c.remote

	for _, net := range socialgraph.Networks {
		if rid, ok := remote.Profile(u, net); ok {
			r := remote.Resource(rid)
			c.out.SetProfile(u, net, r.Text, r.URLs...)
		}
	}
	for _, cid := range remote.RelatedContainers(u) {
		if ncid, ok := c.crawlContainer(cid); ok {
			c.out.RelatesTo(u, ncid)
		}
	}
	return true
}

// copyStreams retrieves the directly related resources of an
// accessible user: created, owned and annotated.
func (c *crawl) copyStreams(u socialgraph.UserID) {
	remote := c.remote
	for _, rid := range remote.OwnedBy(u) {
		c.out.Owns(u, c.mapOrCopy(rid))
	}
	for _, rid := range remote.CreatedBy(u) {
		c.mapOrCopy(rid) // the creates edge is recorded by the copy
	}
	for _, rid := range remote.AnnotatedBy(u) {
		c.out.Annotates(u, c.mapOrCopy(rid))
	}
}

// mapOrCopy returns the crawled copy of a remote resource, cloning it
// on first use. A resource that lives in a container but was not part
// of a crawled feed is still retrievable individually (the API serves
// single posts), so it is copied standalone — its contains edge is
// simply not visible to the crawl.
func (c *crawl) mapOrCopy(rid socialgraph.ResourceID) socialgraph.ResourceID {
	if nid, ok := c.resourceMap[rid]; ok {
		return nid
	}
	r := c.remote.Resource(rid)
	nid := c.out.AddResource(r.Network, r.Kind, r.Creator, r.Text, r.URLs...)
	c.resourceMap[rid] = nid
	c.stats.ResourcesCopied++
	return nid
}

// crawlContainer retrieves a container and its most recent resources.
func (c *crawl) crawlContainer(cid socialgraph.ContainerID) (socialgraph.ContainerID, bool) {
	if ncid, ok := c.containerMap[cid]; ok {
		return ncid, true
	}
	if !c.spendCall() {
		return -1, false
	}
	remote := c.remote
	cont := remote.Container(cid)
	desc := remote.Resource(cont.Desc)
	ncid := c.out.AddContainer(cont.Network, cont.Kind, desc.Creator, cont.Name, desc.Text)
	c.containerMap[cid] = ncid

	feed := remote.ContainedResources(cid)
	keep := len(feed)
	if c.policy.MaxPerContainer > 0 && keep > c.policy.MaxPerContainer {
		keep = c.policy.MaxPerContainer
		c.stats.ContainersTruncated++
	}
	for _, rid := range feed[len(feed)-keep:] { // the most recent ones
		r := remote.Resource(rid)
		nid := c.out.AddContainedResource(r.Kind, ncid, r.Creator, r.Text, r.URLs...)
		c.resourceMap[rid] = nid
		c.stats.ResourcesCopied++
	}
	c.stats.ResourcesSkipped += len(feed) - keep
	return ncid, true
}
