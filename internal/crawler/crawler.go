// Package crawler models the Resource Extraction step of the analysis
// flow (paper §2.3, Fig. 4): collecting social data through the
// platforms' APIs, subject to the real-world constraints the paper
// documents — user privacy settings (only 80 of the 13k Facebook
// friends allowed profile access, §3.3.3), per-container result caps
// ("for each resource container we retrieved the most recent
// resources"), and API call budgets.
//
// The crawler extracts, from a remote platform API (internal/faults —
// the ground truth living on the platforms, possibly behind injected
// failures), the partial view an application with a given access
// policy would actually obtain. Evaluating the expert finder on
// crawls of decreasing completeness quantifies how robust the method
// is to the access limits every third-party application faces — the
// paper notes that platform owners, who see everything, are strictly
// better positioned (§3.7). CrawlAPI extends that question from
// *policy* incompleteness to *transient* incompleteness: flaky
// endpoints, rate limits and outages, crawled through a configurable
// retry / rate-limit / circuit-breaker stack (internal/resilience).
package crawler

import (
	"errors"
	"log/slog"
	"math/rand"
	"time"

	"expertfind/internal/faults"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Crawl metrics bridge the per-crawl Stats into the process-wide
// registry as cumulative counters (a long-lived service may crawl
// many times), plus live breaker-state gauges per network. Waits are
// split by cause: backoff (reactive, after failures) vs. pacing
// (proactive token-bucket rate limiting).
var (
	mAPICalls = telemetry.Default().Counter(
		"expertfind_crawler_api_calls_total",
		"Platform API call attempts, retries included.")
	mFailedCalls = telemetry.Default().Counter(
		"expertfind_crawler_failed_calls_total",
		"API call attempts that returned a platform error.")
	mRetries = telemetry.Default().Counter(
		"expertfind_crawler_retries_total",
		"Extra attempts spent re-trying failed calls.")
	mGaveUp = telemetry.Default().Counter(
		"expertfind_crawler_gave_up_total",
		"Fetches abandoned for good (retries exhausted, outage, open breaker).")
	mBreakerTrips = telemetry.Default().Counter(
		"expertfind_crawler_breaker_trips_total",
		"Circuit-breaker openings across networks.")
	mUsersVisited = telemetry.Default().Counter(
		"expertfind_crawler_users_visited_total",
		"Users whose data was at least partially retrieved.")
	mUsersDenied = telemetry.Default().Counter(
		"expertfind_crawler_users_denied_total",
		"Users skipped by privacy settings.")
	mResourcesCopied = telemetry.Default().Counter(
		"expertfind_crawler_resources_copied_total",
		"Resources copied into crawled graphs.")
	mWaitSeconds = telemetry.Default().CounterVec(
		"expertfind_crawler_wait_seconds_total",
		"Simulated seconds spent waiting, by cause.", "kind")
	mBreakerOpen = telemetry.Default().GaugeVec(
		"expertfind_crawler_breaker_open",
		"Whether the network's circuit breaker is currently open (1) or closed (0).",
		"network")
)

// record folds one crawl's Stats into the cumulative counters. Waits
// are bridged incrementally at their call sites (retry backoff vs.
// bucket pacing), so Stats.Waited is deliberately not re-counted here.
func (s Stats) record() {
	mAPICalls.Add(float64(s.APICalls))
	mFailedCalls.Add(float64(s.FailedCalls))
	mRetries.Add(float64(s.Retries))
	mGaveUp.Add(float64(s.GaveUp))
	mBreakerTrips.Add(float64(s.BreakerTrips))
	mUsersVisited.Add(float64(s.UsersVisited))
	mUsersDenied.Add(float64(s.UsersDenied))
	mResourcesCopied.Add(float64(s.ResourcesCopied))
}

// Policy captures the access constraints of a crawl.
type Policy struct {
	// ProfileAccessProb is the probability that a non-candidate
	// user's privacy settings allow reading their profile and
	// activities (the candidates granted authorization tokens, so
	// their own data is always accessible). The paper measured ≈0.6%
	// for Facebook friends; followed accounts are typically public.
	ProfileAccessProb float64
	// MaxPerContainer caps how many resources are retrieved per
	// group or page (the "most recent resources" cap). Zero means no
	// cap.
	MaxPerContainer int
	// MaxAPICalls bounds the total number of API call attempts; one
	// call retrieves one user's presence on one network (profile +
	// memberships + streams) or one container feed, and every retry
	// of a failed call spends another attempt. Zero means unlimited.
	MaxAPICalls int
	// Seed drives the privacy draws and the retry jitter, making
	// crawls reproducible.
	Seed int64
}

// FullAccess is the policy of a platform owner: everything visible.
var FullAccess = Policy{ProfileAccessProb: 1}

// Resilience configures the fault-handling stack a crawl runs its API
// calls through. The zero value is a bare client: single attempts, no
// pacing, no breaker — a call that fails is immediately given up.
type Resilience struct {
	// Retry is the per-call retry/backoff policy.
	Retry resilience.RetryPolicy
	// RatePerNetwork, when positive, paces calls against each network
	// through a token bucket of that many calls per second.
	RatePerNetwork float64
	// Burst is the token-bucket burst; values < 1 default to 1.
	Burst int
	// Breaker, when Threshold > 0, guards each network with a circuit
	// breaker so a hard outage stops burning call budget.
	Breaker resilience.BreakerPolicy
	// Clock supplies backoff and pacing waits; nil means a private
	// virtual clock (the crawl simulates waiting instead of sleeping,
	// so heavily-faulted sweeps still run in milliseconds).
	Clock *resilience.Clock
	// Logger, when set, receives structured crawl events: breaker
	// transitions per network as they happen and a summary record when
	// the crawl finishes. Nil disables logging.
	Logger *slog.Logger
}

// DefaultResilience is the stack the commands enable with -retries:
// SDK-style backoff plus a 5-failure breaker with a 1s cooldown.
var DefaultResilience = Resilience{
	Retry:   resilience.DefaultRetry,
	Breaker: resilience.BreakerPolicy{Threshold: 5, Cooldown: time.Second},
}

// Stats reports what a crawl did.
type Stats struct {
	APICalls            int
	UsersVisited        int
	UsersDenied         int
	ContainersTruncated int
	ResourcesCopied     int
	ResourcesSkipped    int

	// FailedCalls counts call attempts that returned a platform
	// error (before any retry).
	FailedCalls int
	// Retries counts the extra attempts spent re-trying failed calls.
	Retries int
	// GaveUp counts fetches abandoned for good: retries exhausted,
	// hard outage, or an open circuit breaker.
	GaveUp int
	// BreakerTrips counts circuit-breaker openings across networks.
	BreakerTrips int
	// Waited is the simulated time spent backing off and pacing.
	Waited time.Duration
}

// errBudget aborts the retry loop when the call budget runs out; it
// is bookkept separately from genuine platform failures.
var errBudget = errors.New("crawler: API call budget exhausted")

// Crawl extracts from remote the subgraph visible under policy
// through a perfectly reliable API — the historical entry point, now
// a convenience wrapper over CrawlAPI with a zero-fault client.
func Crawl(remote *socialgraph.Graph, policy Policy) (*socialgraph.Graph, Stats) {
	return CrawlAPI(faults.Wrap(remote, faults.Config{}), policy, Resilience{})
}

// CrawlAPI extracts the subgraph visible under policy from a platform
// API that may inject failures, running every call through the given
// resilience stack. The crawled graph mirrors the remote user table
// (same UserIDs), so ground truth defined on remote users applies
// unchanged; resource and container IDs are fresh.
func CrawlAPI(api faults.API, policy Policy, res Resilience) (*socialgraph.Graph, Stats) {
	clock := res.Clock
	if clock == nil {
		clock = resilience.NewClock()
	}
	c := &crawl{
		api:          api,
		policy:       policy,
		rng:          rand.New(rand.NewSource(policy.Seed + 1)),
		out:          socialgraph.New(),
		resourceMap:  make(map[socialgraph.ResourceID]socialgraph.ResourceID),
		containerMap: make(map[socialgraph.ContainerID]socialgraph.ContainerID),
		visited:      make(map[socialgraph.UserID]bool),
		views:        make(map[socialgraph.UserID][]*faults.UserView),
		clock:        clock,
	}
	c.retryer = &resilience.Retryer{
		Policy: res.Retry,
		Clock:  clock,
		Rand:   rand.New(rand.NewSource(policy.Seed + 2)),
		OnRetry: func(_ int, _ error, delay time.Duration) {
			c.stats.Retries++
			c.stats.Waited += delay
			mWaitSeconds.With("backoff").Add(delay.Seconds())
		},
	}
	if res.RatePerNetwork > 0 || res.Breaker.Threshold > 0 {
		c.buckets = make(map[socialgraph.Network]*resilience.TokenBucket)
		c.breakers = make(map[socialgraph.Network]*resilience.Breaker)
		for _, net := range socialgraph.Networks {
			if res.RatePerNetwork > 0 {
				c.buckets[net] = resilience.NewTokenBucket(res.RatePerNetwork, res.Burst, clock)
			}
			if res.Breaker.Threshold > 0 {
				br := resilience.NewBreaker(res.Breaker, clock)
				g := mBreakerOpen.With(string(net))
				g.Set(0)
				br.OnStateChange = func(open bool) {
					if open {
						g.Set(1)
						if res.Logger != nil {
							res.Logger.Warn("crawler breaker opened", "network", string(net))
						}
					} else {
						g.Set(0)
						if res.Logger != nil {
							res.Logger.Info("crawler breaker closed", "network", string(net))
						}
					}
				}
				c.breakers[net] = br
			}
		}
	}
	c.run()
	for _, br := range c.breakers {
		c.stats.BreakerTrips += br.Trips()
	}
	c.stats.record()
	if res.Logger != nil {
		res.Logger.Info("crawl finished",
			"api_calls", c.stats.APICalls,
			"failed_calls", c.stats.FailedCalls,
			"retries", c.stats.Retries,
			"gave_up", c.stats.GaveUp,
			"breaker_trips", c.stats.BreakerTrips,
			"users_visited", c.stats.UsersVisited,
			"users_denied", c.stats.UsersDenied,
			"resources_copied", c.stats.ResourcesCopied,
			"waited", c.stats.Waited.String())
	}
	return c.out, c.stats
}

type crawl struct {
	api     faults.API
	policy  Policy
	rng     *rand.Rand
	out     *socialgraph.Graph
	stats   Stats
	clock   *resilience.Clock
	retryer *resilience.Retryer

	buckets  map[socialgraph.Network]*resilience.TokenBucket
	breakers map[socialgraph.Network]*resilience.Breaker

	resourceMap  map[socialgraph.ResourceID]socialgraph.ResourceID
	containerMap map[socialgraph.ContainerID]socialgraph.ContainerID
	visited      map[socialgraph.UserID]bool
	// views caches the fetched per-network user data so streams can be
	// copied after all container feeds are in (see run, phase 3).
	views map[socialgraph.UserID][]*faults.UserView
}

// spendCall consumes one API call if the budget allows it.
func (c *crawl) spendCall() bool {
	if c.policy.MaxAPICalls > 0 && c.stats.APICalls >= c.policy.MaxAPICalls {
		return false
	}
	c.stats.APICalls++
	return true
}

// fetch runs one API fetch against net through the breaker, pacing
// and retry stack, reporting whether it ultimately succeeded.
func (c *crawl) fetch(net socialgraph.Network, f func() error) bool {
	br := c.breakers[net]
	err := c.retryer.Do(func() error {
		if br != nil && !br.Allow() {
			return resilience.Permanent(resilience.ErrOpen)
		}
		if !c.spendCall() {
			return resilience.Permanent(errBudget)
		}
		if b := c.buckets[net]; b != nil {
			if wait := b.Reserve(); wait > 0 {
				c.stats.Waited += wait
				mWaitSeconds.With("pacing").Add(wait.Seconds())
				c.clock.Sleep(wait)
			}
		}
		err := f()
		if err != nil {
			c.stats.FailedCalls++
			br.Failure()
			return err
		}
		br.Success()
		return nil
	})
	if err == nil {
		return true
	}
	if !errors.Is(err, errBudget) {
		c.stats.GaveUp++
	}
	return false
}

func (c *crawl) run() {
	for _, u := range c.api.Users() {
		c.out.AddUser(u.Name, u.Candidate)
	}
	candidates := c.api.Candidates()

	// Phase 1: visit the authorized candidates, then the users they
	// follow (friends included — whether the matching later uses
	// friend content is the traversal's decision; the crawler mirrors
	// the relationship structure it can see). Visiting retrieves the
	// per-network profiles, memberships and container feeds.
	var accessible []socialgraph.UserID
	for _, u := range candidates {
		if c.visitUser(u, true) {
			accessible = append(accessible, u)
		}
	}
	for _, u := range candidates {
		for _, net := range socialgraph.Networks {
			for _, e := range c.api.Follows(u, net) {
				c.out.Follows(u, e.To, net)
				if e.Mutual {
					c.out.Follows(e.To, u, net)
				}
				if c.visitUser(e.To, false) {
					accessible = append(accessible, e.To)
				}
			}
		}
	}
	// Phase 2: follow edges among visited non-candidates, so
	// distance-2 profile paths (followed-of-followed) survive.
	for v := range c.visited {
		for _, net := range socialgraph.Networks {
			for _, e := range c.api.Follows(v, net) {
				if c.visited[e.To] && !c.out.FollowsEdge(v, e.To, net) {
					c.out.Follows(v, e.To, net)
				}
			}
		}
	}
	// Phase 3: streams — owned, created and annotated resources of
	// every accessible user. This runs after all container feeds are
	// in, so stream items that also sit in a crawled feed reuse the
	// feed copy instead of duplicating.
	for _, u := range accessible {
		for _, view := range c.views[u] {
			for _, r := range view.Owned {
				c.out.Owns(u, c.mapOrCopy(r))
			}
			for _, r := range view.Created {
				c.mapOrCopy(r) // the creates edge is recorded by the copy
			}
			for _, r := range view.Annotated {
				c.out.Annotates(u, c.mapOrCopy(r))
			}
		}
	}
}

// visitUser performs the access check and retrieves the user's
// per-network profiles, container feeds and streams. It reports
// whether any of the user's data was retrieved.
func (c *crawl) visitUser(u socialgraph.UserID, authorized bool) bool {
	if c.visited[u] {
		return false // already handled (or denied) once
	}
	c.visited[u] = true
	if !authorized && c.rng.Float64() >= c.policy.ProfileAccessProb {
		c.stats.UsersDenied++
		return false
	}
	any := false
	for _, net := range socialgraph.Networks {
		var view *faults.UserView
		ok := c.fetch(net, func() error {
			v, err := c.api.FetchUser(u, net)
			if err == nil {
				view = v
			}
			return err
		})
		if !ok {
			continue // this network's data is lost, the others may not be
		}
		any = true
		if view.Profile != nil {
			c.out.SetProfile(u, net, view.Profile.Text, view.Profile.URLs...)
		}
		for _, cid := range view.Containers {
			if ncid, ok := c.crawlContainer(cid, net); ok {
				c.out.RelatesTo(u, ncid)
			}
		}
		c.views[u] = append(c.views[u], view)
	}
	if any {
		c.stats.UsersVisited++
	}
	return any
}

// mapOrCopy returns the crawled copy of a remote resource, cloning it
// on first use. A resource that lives in a container but was not part
// of a crawled feed is still retrievable individually (the API serves
// single posts), so it is copied standalone — its contains edge is
// simply not visible to the crawl.
func (c *crawl) mapOrCopy(r socialgraph.Resource) socialgraph.ResourceID {
	if nid, ok := c.resourceMap[r.ID]; ok {
		return nid
	}
	nid := c.out.AddResource(r.Network, r.Kind, r.Creator, r.Text, r.URLs...)
	c.resourceMap[r.ID] = nid
	c.stats.ResourcesCopied++
	return nid
}

// crawlContainer retrieves a container and its most recent resources.
// A container whose fetch fails is not cached, so a later member may
// retry it.
func (c *crawl) crawlContainer(cid socialgraph.ContainerID, net socialgraph.Network) (socialgraph.ContainerID, bool) {
	if ncid, ok := c.containerMap[cid]; ok {
		return ncid, true
	}
	var view *faults.ContainerView
	ok := c.fetch(net, func() error {
		v, err := c.api.FetchContainer(cid, c.policy.MaxPerContainer)
		if err == nil {
			view = v
		}
		return err
	})
	if !ok {
		return -1, false
	}
	ncid := c.out.AddContainer(view.Container.Network, view.Container.Kind,
		view.Desc.Creator, view.Container.Name, view.Desc.Text)
	c.containerMap[cid] = ncid

	for _, r := range view.Feed {
		nid := c.out.AddContainedResource(r.Kind, ncid, r.Creator, r.Text, r.URLs...)
		c.resourceMap[r.ID] = nid
		c.stats.ResourcesCopied++
	}
	if skipped := view.Total - len(view.Feed); skipped > 0 {
		c.stats.ContainersTruncated++
		c.stats.ResourcesSkipped += skipped
	}
	return ncid, true
}
