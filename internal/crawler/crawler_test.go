package crawler

import (
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/socialgraph"
)

func remote(t testing.TB) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Config{Seed: 5, Scale: 0.05})
}

func TestFullAccessPreservesCandidateReach(t *testing.T) {
	ds := remote(t)
	crawled, stats := Crawl(ds.Graph, FullAccess)

	if stats.UsersDenied != 0 {
		t.Errorf("denied %d users under full access", stats.UsersDenied)
	}
	if stats.ResourcesSkipped != 0 || stats.ContainersTruncated != 0 {
		t.Errorf("truncation under full access: %+v", stats)
	}

	// The crawl reaches everything a candidate-rooted distance-2
	// traversal reaches: per-candidate hit counts must match.
	for _, u := range ds.Candidates {
		want := len(ds.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		got := len(crawled.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		if got != want {
			t.Errorf("candidate %d: crawled reach %d, remote reach %d", u, got, want)
		}
	}
}

func TestUserIDsPreserved(t *testing.T) {
	ds := remote(t)
	crawled, _ := Crawl(ds.Graph, FullAccess)
	if crawled.NumUsers() != ds.Graph.NumUsers() {
		t.Fatalf("user counts differ: %d vs %d", crawled.NumUsers(), ds.Graph.NumUsers())
	}
	for _, u := range ds.Graph.Users() {
		got := crawled.User(u.ID)
		if got.Name != u.Name || got.Candidate != u.Candidate {
			t.Fatalf("user %d differs: %+v vs %+v", u.ID, got, u)
		}
	}
}

func TestPrivacyDeniesNonCandidates(t *testing.T) {
	ds := remote(t)
	crawled, stats := Crawl(ds.Graph, Policy{ProfileAccessProb: 0, Seed: 1})

	if stats.UsersDenied == 0 {
		t.Fatal("nobody denied at access probability 0")
	}
	// Candidates are authorized regardless: their profiles exist.
	for _, u := range ds.Candidates {
		if _, ok := crawled.Profile(u, socialgraph.Facebook); !ok {
			t.Errorf("candidate %d lost their profile", u)
		}
	}
	// Reach shrinks: zero external access removes followed users'
	// content, so distance-2 hits must drop for some candidate.
	shrunk := false
	for _, u := range ds.Candidates {
		a := len(crawled.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		b := len(ds.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		if a < b {
			shrunk = true
		}
		if a > b {
			t.Fatalf("candidate %d gained reach under privacy: %d > %d", u, a, b)
		}
	}
	if !shrunk {
		t.Error("privacy had no effect on reach")
	}
}

func TestContainerCap(t *testing.T) {
	ds := remote(t)
	policy := FullAccess
	policy.MaxPerContainer = 2
	crawled, stats := Crawl(ds.Graph, policy)

	for i := 0; i < crawled.NumContainers(); i++ {
		if n := len(crawled.ContainedResources(socialgraph.ContainerID(i))); n > 2 {
			t.Fatalf("container %d kept %d resources, cap 2", i, n)
		}
	}
	if stats.ResourcesSkipped == 0 {
		t.Error("no resources skipped despite the cap")
	}
}

func TestAPIBudget(t *testing.T) {
	ds := remote(t)
	policy := FullAccess
	policy.MaxAPICalls = 10
	_, stats := Crawl(ds.Graph, policy)
	if stats.APICalls > 10 {
		t.Errorf("API calls %d exceed budget", stats.APICalls)
	}
}

func TestCrawlDeterministic(t *testing.T) {
	ds := remote(t)
	policy := Policy{ProfileAccessProb: 0.5, Seed: 9}
	a, sa := Crawl(ds.Graph, policy)
	b, sb := Crawl(ds.Graph, policy)
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if a.NumResources() != b.NumResources() {
		t.Fatalf("resource counts differ: %d vs %d", a.NumResources(), b.NumResources())
	}
}

func TestPartialAccessInBetween(t *testing.T) {
	ds := remote(t)
	full, _ := Crawl(ds.Graph, FullAccess)
	half, _ := Crawl(ds.Graph, Policy{ProfileAccessProb: 0.5, Seed: 3})
	none, _ := Crawl(ds.Graph, Policy{ProfileAccessProb: 0, Seed: 3})

	reach := func(g *socialgraph.Graph) int {
		total := 0
		for _, u := range ds.Candidates {
			total += len(g.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		}
		return total
	}
	rf, rh, rn := reach(full), reach(half), reach(none)
	if !(rn < rh && rh < rf) {
		t.Errorf("reach not monotone in access: none=%d half=%d full=%d", rn, rh, rf)
	}
}
