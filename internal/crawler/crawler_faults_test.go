package crawler

import (
	"testing"

	"expertfind/internal/faults"
	"expertfind/internal/socialgraph"
)

// faultCfg is a noisy but survivable API: 15% transient failures,
// 10% rate limits.
func faultCfg() faults.Config {
	return faults.Config{Seed: 11, TransientRate: 0.15, RateLimitRate: 0.10}
}

func TestRetriesRecoverResources(t *testing.T) {
	ds := remote(t)
	full, _ := Crawl(ds.Graph, FullAccess)

	bare, bareStats := CrawlAPI(faults.Wrap(ds.Graph, faultCfg()), FullAccess, Resilience{})
	hardened, hardStats := CrawlAPI(faults.Wrap(ds.Graph, faultCfg()), FullAccess, DefaultResilience)

	if bareStats.GaveUp == 0 || bareStats.FailedCalls == 0 {
		t.Fatalf("bare client saw no faults: %+v", bareStats)
	}
	if bareStats.Retries != 0 {
		t.Errorf("bare client retried: %+v", bareStats)
	}
	if hardStats.Retries == 0 {
		t.Fatalf("hardened client never retried: %+v", hardStats)
	}
	if hardStats.GaveUp >= bareStats.GaveUp {
		t.Errorf("retries did not reduce give-ups: %d vs %d", hardStats.GaveUp, bareStats.GaveUp)
	}
	// The acceptance bar: with retries on, a faulted crawl recovers at
	// least as many resources as the same crawl with retries off, and
	// approaches the fault-free crawl.
	if hardened.NumResources() < bare.NumResources() {
		t.Errorf("retries lost resources: %d < %d", hardened.NumResources(), bare.NumResources())
	}
	if hardened.NumResources() > full.NumResources() {
		t.Errorf("faulted crawl exceeds the fault-free one: %d > %d",
			hardened.NumResources(), full.NumResources())
	}
	t.Logf("resources: fault-free=%d bare=%d hardened=%d (retries=%d gaveUp=%d→%d)",
		full.NumResources(), bare.NumResources(), hardened.NumResources(),
		hardStats.Retries, bareStats.GaveUp, hardStats.GaveUp)
}

func TestFaultedStatsDeterministic(t *testing.T) {
	ds := remote(t)
	run := func() Stats {
		_, st := CrawlAPI(faults.Wrap(ds.Graph, faultCfg()), Policy{ProfileAccessProb: 0.5, Seed: 4}, DefaultResilience)
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 || a.FailedCalls == 0 {
		t.Errorf("expected nonzero retry counters: %+v", a)
	}
}

func TestOutageDropsNetworkAndTripsBreaker(t *testing.T) {
	ds := remote(t)
	cfg := faults.Config{Seed: 2, Outages: []socialgraph.Network{socialgraph.Twitter}}
	crawled, st := CrawlAPI(faults.Wrap(ds.Graph, cfg), FullAccess, DefaultResilience)

	if st.BreakerTrips == 0 {
		t.Errorf("breaker never tripped during a hard outage: %+v", st)
	}
	if st.GaveUp == 0 {
		t.Errorf("no fetches given up during the outage: %+v", st)
	}
	counts := map[socialgraph.Network]int{}
	for i := 0; i < crawled.NumResources(); i++ {
		counts[crawled.Resource(socialgraph.ResourceID(i)).Network]++
	}
	if counts[socialgraph.Twitter] != 0 {
		t.Errorf("twitter resources crawled during its outage: %d", counts[socialgraph.Twitter])
	}
	if counts[socialgraph.Facebook] == 0 || counts[socialgraph.LinkedIn] == 0 {
		t.Errorf("healthy networks starved: %v", counts)
	}
}

func TestBreakerSavesCallBudget(t *testing.T) {
	ds := remote(t)
	cfg := faults.Config{Seed: 2, Outages: []socialgraph.Network{socialgraph.Twitter}}
	_, withBreaker := CrawlAPI(faults.Wrap(ds.Graph, cfg), FullAccess, DefaultResilience)
	_, without := CrawlAPI(faults.Wrap(ds.Graph, cfg), FullAccess, Resilience{Retry: DefaultResilience.Retry})
	if withBreaker.APICalls >= without.APICalls {
		t.Errorf("breaker did not save calls: %d vs %d", withBreaker.APICalls, without.APICalls)
	}
}

func TestBudgetRespectedUnderRetries(t *testing.T) {
	ds := remote(t)
	policy := FullAccess
	policy.MaxAPICalls = 25
	_, st := CrawlAPI(faults.Wrap(ds.Graph, faultCfg()), policy, DefaultResilience)
	if st.APICalls > 25 {
		t.Errorf("API calls %d exceed budget 25 (retries must spend attempts)", st.APICalls)
	}
}

func TestBudgetExhaustedMidContainers(t *testing.T) {
	ds := remote(t)
	full, fullStats := Crawl(ds.Graph, FullAccess)

	// A budget that runs out while the first candidates' containers
	// are being fetched: some feeds land, the rest are cut off.
	policy := FullAccess
	policy.MaxAPICalls = 20
	cut, st := Crawl(ds.Graph, policy)
	if st.APICalls != policy.MaxAPICalls {
		t.Errorf("calls = %d, want the full budget %d spent", st.APICalls, policy.MaxAPICalls)
	}
	if fullStats.APICalls <= policy.MaxAPICalls {
		t.Fatalf("test premise broken: full crawl spends only %d calls", fullStats.APICalls)
	}
	if cut.NumContainers() == 0 {
		t.Error("budget exhausted before any container was fetched")
	}
	if cut.NumContainers() >= full.NumContainers() {
		t.Errorf("budget cut did not drop containers: %d vs %d", cut.NumContainers(), full.NumContainers())
	}
	if cut.NumResources() >= full.NumResources() {
		t.Errorf("budget cut did not drop resources: %d vs %d", cut.NumResources(), full.NumResources())
	}
	// Exhaustion is a policy decision, not a platform failure.
	if st.GaveUp != 0 || st.Retries != 0 {
		t.Errorf("budget exhaustion miscounted as failures: %+v", st)
	}
}

func TestMaxPerContainerOne(t *testing.T) {
	ds := remote(t)
	policy := FullAccess
	policy.MaxPerContainer = 1
	crawled, st := Crawl(ds.Graph, policy)
	for i := 0; i < crawled.NumContainers(); i++ {
		if n := len(crawled.ContainedResources(socialgraph.ContainerID(i))); n > 1 {
			t.Fatalf("container %d kept %d resources, cap 1", i, n)
		}
	}
	if st.ContainersTruncated == 0 || st.ResourcesSkipped == 0 {
		t.Errorf("cap 1 truncated nothing: %+v", st)
	}
}

func TestCandidateWithZeroFollows(t *testing.T) {
	g := socialgraph.New()
	u := g.AddUser("hermit", true)
	g.SetProfile(u, socialgraph.LinkedIn, "distributed systems consultant")
	crawled, st := Crawl(g, FullAccess)
	if st.UsersVisited != 1 || st.UsersDenied != 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := crawled.Profile(u, socialgraph.LinkedIn); !ok {
		t.Error("profile of the follow-less candidate lost")
	}
	if crawled.NumResources() != 1 {
		t.Errorf("resources = %d, want just the profile", crawled.NumResources())
	}
}
