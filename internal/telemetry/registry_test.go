package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value() = %v, want 3.5", got)
	}
	// Re-registration with matching shape returns the same child.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("Value() = %v, want 7.5", got)
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering m as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegisterLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering m_total with different labels did not panic")
		}
	}()
	r.CounterVec("m_total", "", "a")
}

func TestVecLabelArityPanics(t *testing.T) {
	v := NewRegistry().CounterVec("m_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestConcurrentUpdates(t *testing.T) {
	const (
		workers = 8
		perW    = 2000
	)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	v := r.CounterVec("v_total", "", "w")
	h := r.Histogram("h_seconds", "", []float64{0.5})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				v.With(label).Inc()
				h.Observe(float64(i%2) * 0.75) // alternates buckets
				// Scrapes race the writers; they must not corrupt state.
				if i%500 == 0 {
					_ = r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()

	want := float64(workers * perW)
	if c.Value() != want {
		t.Errorf("counter = %v, want %v", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
	var vecTotal float64
	for _, l := range []string{"a", "b", "c", "d"} {
		vecTotal += v.With(l).Value()
	}
	if vecTotal != want {
		t.Errorf("vec total = %v, want %v", vecTotal, want)
	}
	if h.Count() != uint64(workers*perW) {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perW)
	}
	snap := r.Gather()
	for _, fam := range snap {
		if fam.Name != "h_seconds" {
			continue
		}
		d := fam.Samples[0].Hist
		if got := d.Counts[0] + d.Counts[1]; got != d.Count {
			t.Errorf("snapshot buckets sum to %d, Count = %d", got, d.Count)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []float64{1, 2, 5})
	// A value equal to an upper bound lands in that bucket (le = ≤).
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 5.0, 7.0} {
		h.Observe(v)
	}
	d := h.snapshot()
	wantCounts := []uint64{2, 2, 1, 1} // (-Inf,1], (1,2], (2,5], (5,+Inf)
	for i, w := range wantCounts {
		if d.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, d.Counts[i], w, d.Counts)
		}
	}
	if d.Count != 6 {
		t.Errorf("Count = %d, want 6", d.Count)
	}
	if d.Sum != 17.0 {
		t.Errorf("Sum = %v, want 17", d.Sum)
	}
}

func TestNormalizeBuckets(t *testing.T) {
	got := normalizeBuckets([]float64{5, 1, 2, 2, math.Inf(1)})
	want := []float64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("normalizeBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeBuckets = %v, want %v", got, want)
		}
	}
	if got := normalizeBuckets(nil); len(got) != len(DefBuckets) {
		t.Fatalf("nil buckets → %d bounds, want DefBuckets (%d)", len(got), len(DefBuckets))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("expertfind_test_requests_total", "Requests served.", "route", "code")
	c.With("GET /v1/find", "200").Add(3)
	c.With("GET /v1/find", "400").Inc()
	g := r.Gauge("expertfind_test_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("expertfind_test_uptime_seconds", "Uptime.", func() float64 { return 42 })
	h := r.Histogram("expertfind_test_duration_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP expertfind_test_requests_total Requests served.
# TYPE expertfind_test_requests_total counter
expertfind_test_requests_total{route="GET /v1/find",code="200"} 3
expertfind_test_requests_total{route="GET /v1/find",code="400"} 1
# HELP expertfind_test_in_flight In-flight requests.
# TYPE expertfind_test_in_flight gauge
expertfind_test_in_flight 2
# HELP expertfind_test_uptime_seconds Uptime.
# TYPE expertfind_test_uptime_seconds gauge
expertfind_test_uptime_seconds 42
# HELP expertfind_test_duration_seconds Latency.
# TYPE expertfind_test_duration_seconds histogram
expertfind_test_duration_seconds_bucket{le="0.1"} 1
expertfind_test_duration_seconds_bucket{le="0.5"} 2
expertfind_test_duration_seconds_bucket{le="+Inf"} 3
expertfind_test_duration_seconds_sum 2.35
expertfind_test_duration_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "", "q").With("say \"hi\"\nback\\slash").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `m_total{q="say \"hi\"\nback\\slash"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition %q does not contain %q", sb.String(), want)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "line one\nline two")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP m_total line one\nline two`) {
		t.Errorf("help not escaped: %q", sb.String())
	}
}

func TestGatherSort(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	v := r.CounterVec("a_total", "", "l")
	v.With("y").Inc()
	v.With("x").Inc()
	fams := r.Gather()
	Sort(fams)
	if fams[0].Name != "a_total" || fams[1].Name != "z_total" {
		t.Fatalf("Sort order: %s, %s", fams[0].Name, fams[1].Name)
	}
	if fams[0].Samples[0].LabelValues[0] != "x" {
		t.Fatalf("sample sort order: %v", fams[0].Samples)
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("NewID length: %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("NewID produced duplicates: %q", a)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_total", "", "route", "code")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("GET /v1/find", "200").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.017)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a_total", "b_total", "c_total"} {
		v := r.CounterVec(n, "help", "l")
		v.With("x").Inc()
		v.With("y").Inc()
	}
	r.Histogram("d_seconds", "help", nil).Observe(0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		_ = r.WritePrometheus(&sb)
	}
}
