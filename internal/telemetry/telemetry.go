// Package telemetry is the observability layer of the expert finding
// system: a dependency-free metrics registry (counters, gauges and
// fixed-bucket histograms with label support, rendered in the
// Prometheus text exposition format) plus lightweight per-query span
// tracing carried through context.Context, with a bounded in-memory
// ring of recent traces.
//
// The industrial expert-finding systems this reproduction follows run
// their ranking pipelines under continuous per-stage measurement;
// this package gives the repo the same layer without leaving the
// standard library. Instrumented packages register their metrics as
// package-level variables against the process-wide Default registry,
// promauto-style:
//
//	var queries = telemetry.Default().Counter(
//		"expertfind_queries_total", "Expert-finding queries served.")
//
// and the serving layer exposes the registry at /metrics and the
// default tracer's ring at /debug/traces (internal/httpapi).
//
// Naming follows the Prometheus conventions: every metric is prefixed
// expertfind_, counters end in _total, durations are histograms in
// seconds named *_duration_seconds or *_seconds_total.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented
// packages (core, index, socialgraph, crawler, httpapi) record into
// and that /metrics serves.
func Default() *Registry { return defaultRegistry }

var defaultTracer = NewTracer(128)

// DefaultTracer returns the process-wide tracer whose ring of recent
// query traces /debug/traces serves.
func DefaultTracer() *Tracer { return defaultTracer }

var idFallback atomic.Uint64

// NewID returns a fresh 16-hex-character identifier for traces and
// requests. IDs are random (crypto/rand), falling back to a process
// counter if the system randomness source fails.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}
