package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span is one timed section of a trace (a pipeline stage). Create
// spans with Trace.StartSpan and close them with End. A nil *Span is
// valid and inert, so instrumented code needs no nil checks.
type Span struct {
	mu    sync.Mutex
	name  string
	start time.Time
	dur   time.Duration
	attrs map[string]string
	ended bool
}

// End closes the span, fixing its duration. Further Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
}

// Trace records the spans of one query or request. Create traces with
// Tracer.Start, which also threads the trace through a context; a nil
// *Trace (what TraceFrom returns on an uninstrumented context) is
// valid and inert.
type Trace struct {
	tracer *Tracer

	mu       sync.Mutex
	id       string
	name     string
	start    time.Time
	dur      time.Duration
	attrs    map[string]string
	spans    []*Span
	finished bool
}

// ID returns the trace identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named span; close it with End.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SetAttr attaches a key/value annotation to the trace itself.
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[k] = v
}

// Finish closes the trace and publishes it into its tracer's ring of
// recent traces. Further Finishes are no-ops.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.dur = time.Since(t.start)
	tracer := t.tracer
	t.mu.Unlock()
	if tracer != nil {
		tracer.record(t)
	}
}

// SpanSnapshot is the JSON-able form of a finished span.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartOffsetUS is the span's start relative to the trace start,
	// in microseconds.
	StartOffsetUS int64             `json:"start_offset_us"`
	DurationUS    int64             `json:"duration_us"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON-able form of a finished trace, what
// /debug/traces serves.
type TraceSnapshot struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanSnapshot    `json:"spans"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:         t.id,
		Name:       t.name,
		Start:      t.start,
		DurationUS: t.dur.Microseconds(),
		Attrs:      copyAttrs(t.attrs),
		Spans:      make([]SpanSnapshot, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		sp.mu.Lock()
		snap.Spans = append(snap.Spans, SpanSnapshot{
			Name:          sp.name,
			StartOffsetUS: sp.start.Sub(t.start).Microseconds(),
			DurationUS:    sp.dur.Microseconds(),
			Attrs:         copyAttrs(sp.attrs),
		})
		sp.mu.Unlock()
	}
	return snap
}

func copyAttrs(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

type traceCtxKey struct{}

// TraceFrom returns the trace carried by ctx, or nil (inert) when the
// context is not traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// Tracer mints traces and keeps a bounded in-memory ring of the most
// recently finished ones. All methods are safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace // newest at (next-1+len)%len once full
	next int
	n    int
}

// NewTracer returns a tracer retaining the last capacity finished
// traces (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// Start mints a trace and attaches it to ctx. id names the trace
// externally (a request ID); empty generates one. Call Finish on the
// returned trace to publish it into the ring.
func (tr *Tracer) Start(ctx context.Context, name, id string) (context.Context, *Trace) {
	if id == "" {
		id = NewID()
	}
	t := &Trace{tracer: tr, id: id, name: name, start: time.Now()}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

func (tr *Tracer) record(t *Trace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	if tr.n < len(tr.ring) {
		tr.n++
	}
}

// Recent snapshots the retained traces, newest first, at most n of
// them (n <= 0 returns all retained).
func (tr *Tracer) Recent(n int) []TraceSnapshot {
	tr.mu.Lock()
	traces := make([]*Trace, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		traces = append(traces, tr.ring[idx])
	}
	tr.mu.Unlock()
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.snapshot()
	}
	return out
}

// Len returns how many traces the ring currently retains.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.n
}
