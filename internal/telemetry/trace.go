package telemetry

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Span is one timed section of a trace (a pipeline stage). Create
// spans with Trace.StartSpan and close them with End. A nil *Span is
// valid and inert, so instrumented code needs no nil checks.
//
// Every span carries a trace-local identifier ("s1", "s2", ... in
// start order) so other spans — and traces recorded by other
// processes — can reference it as their parent, which is how the
// coordinator stitches shard timelines under the exact fan-out
// attempt that served them.
type Span struct {
	mu     sync.Mutex
	id     string
	parent string
	name   string
	start  time.Time
	dur    time.Duration
	attrs  map[string]string
	ended  bool
}

// ID returns the span's trace-local identifier ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// End closes the span, fixing its duration. Further Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
}

// Trace records the spans of one query or request. Create traces with
// Tracer.Start, which also threads the trace through a context; a nil
// *Trace (what TraceFrom returns on an uninstrumented context) is
// valid and inert.
type Trace struct {
	tracer *Tracer

	mu         sync.Mutex
	id         string
	name       string
	parentSpan string
	start      time.Time
	dur        time.Duration
	attrs      map[string]string
	spans      []*Span
	nspans     int
	keep       bool
	keepReason string
	kept       bool
	finished   bool
}

// ID returns the trace identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named top-level span; close it with End.
func (t *Trace) StartSpan(name string) *Span {
	return t.StartChildSpan("", name)
}

// StartChildSpan opens a named span nested under the span with the
// given trace-local id (empty for a top-level span); close it with
// End.
func (t *Trace) StartChildSpan(parentID, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{parent: parentID, name: name, start: time.Now()}
	t.mu.Lock()
	t.nspans++
	sp.id = fmt.Sprintf("s%d", t.nspans)
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SetAttr attaches a key/value annotation to the trace itself.
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[k] = v
}

// SetParentSpan records the remote span this whole trace nests under:
// a shard process sets it from the coordinator's X-Expertfind-Span
// header, so the assembled cross-process timeline attaches the shard's
// spans to the exact fan-out attempt that carried the request.
func (t *Trace) SetParentSpan(spanID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.parentSpan = spanID
}

// Keep marks the trace for tail-sampled retention regardless of its
// duration — the serving layer calls it for errored, shed and
// degraded requests, the ones a newest-N ring evicts first. The first
// reason wins.
func (t *Trace) Keep(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.markKeepLocked(reason)
}

func (t *Trace) markKeepLocked(reason string) {
	if t.keep {
		return
	}
	t.keep = true
	t.keepReason = reason
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs["keep"] = reason
}

// WasKept reports whether Finish placed the trace in its tracer's
// tail-sampled keep ring (explicitly marked, or slower than the keep
// policy's threshold).
func (t *Trace) WasKept() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kept
}

// Finish closes the trace and publishes it into its tracer's ring of
// recent traces (and, when marked or slow, the keep ring). Further
// Finishes are no-ops.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.dur = time.Since(t.start)
	tracer := t.tracer
	t.mu.Unlock()
	if tracer != nil {
		tracer.record(t)
	}
}

// SpanSnapshot is the JSON-able form of a finished span.
type SpanSnapshot struct {
	// ID is the span's trace-local identifier ("s1", "s2", ... in
	// start order).
	ID string `json:"span_id"`
	// Parent is the trace-local id of the enclosing span, empty for
	// top-level spans.
	Parent string `json:"parent_span_id,omitempty"`
	Name   string `json:"name"`
	// StartOffsetUS is the span's start relative to the trace start,
	// in microseconds.
	StartOffsetUS int64             `json:"start_offset_us"`
	DurationUS    int64             `json:"duration_us"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON-able form of a finished trace, what
// /debug/traces serves.
type TraceSnapshot struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// ParentSpan is the remote span id this trace nests under (set on
	// shard traces from the coordinator's X-Expertfind-Span header).
	ParentSpan string            `json:"parent_span_id,omitempty"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanSnapshot    `json:"spans"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:         t.id,
		Name:       t.name,
		ParentSpan: t.parentSpan,
		Start:      t.start,
		DurationUS: t.dur.Microseconds(),
		Attrs:      copyAttrs(t.attrs),
		Spans:      make([]SpanSnapshot, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		sp.mu.Lock()
		snap.Spans = append(snap.Spans, SpanSnapshot{
			ID:            sp.id,
			Parent:        sp.parent,
			Name:          sp.name,
			StartOffsetUS: sp.start.Sub(t.start).Microseconds(),
			DurationUS:    sp.dur.Microseconds(),
			Attrs:         copyAttrs(sp.attrs),
		})
		sp.mu.Unlock()
	}
	return snap
}

func copyAttrs(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SpanHeader is the HTTP header carrying the trace-local id of the
// caller's span on a cross-process request: the scatter client stamps
// each fan-out attempt's span id onto the outbound shard request, and
// the shard records it via Trace.SetParentSpan, so the assembled
// timeline nests the shard's work under the exact attempt (primary,
// hedge or retry) that carried it.
const SpanHeader = "X-Expertfind-Span"

type traceCtxKey struct{}

// TraceFrom returns the trace carried by ctx, or nil (inert) when the
// context is not traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

type spanCtxKey struct{}

// ContextWithSpan threads a span through ctx so a downstream layer
// (the scatter client's hedged attempts) can nest its own child spans
// under it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil (inert).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// KeepPolicy configures tail-sampled retention: which finished traces
// are copied into the tracer's bounded keep ring in addition to the
// newest-N recent ring. A plain newest-N ring evicts exactly the
// traces an operator needs — the slow, errored and degraded ones —
// under any flood of fast healthy queries; the keep ring retains them.
type KeepPolicy struct {
	// Capacity bounds the keep ring. 0 disables tail retention.
	Capacity int
	// SlowThreshold, when positive, keeps every trace at least this
	// slow even if nothing marked it explicitly.
	SlowThreshold time.Duration
}

// Tracer mints traces and keeps two bounded in-memory rings: the most
// recently finished traces, and a tail-sampled keep ring of the
// interesting ones (slow, errored, shed, degraded). All methods are
// safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	ring   []*Trace // newest at (next-1+len)%len once full
	next   int
	n      int
	policy KeepPolicy
	kring  []*Trace
	knext  int
	kn     int
}

// NewTracer returns a tracer retaining the last capacity finished
// traces (minimum 1). Tail retention starts with a keep ring of the
// same capacity and no slow threshold; tune it with SetKeepPolicy.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring:   make([]*Trace, capacity),
		policy: KeepPolicy{Capacity: capacity},
		kring:  make([]*Trace, capacity),
	}
}

// SetKeepPolicy replaces the tail-retention policy. Resizing the keep
// ring drops previously kept traces.
func (tr *Tracer) SetKeepPolicy(p KeepPolicy) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.policy = p
	if p.Capacity < 0 {
		tr.policy.Capacity = 0
	}
	tr.kring = make([]*Trace, tr.policy.Capacity)
	tr.knext, tr.kn = 0, 0
}

// KeepPolicy returns the current tail-retention policy.
func (tr *Tracer) KeepPolicy() KeepPolicy {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.policy
}

// Start mints a trace and attaches it to ctx. id names the trace
// externally (a request ID); empty generates one. Call Finish on the
// returned trace to publish it into the ring.
func (tr *Tracer) Start(ctx context.Context, name, id string) (context.Context, *Trace) {
	if id == "" {
		id = NewID()
	}
	t := &Trace{tracer: tr, id: id, name: name, start: time.Now()}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

func (tr *Tracer) record(t *Trace) {
	t.mu.Lock()
	dur := t.dur
	keep := t.keep
	t.mu.Unlock()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !keep && tr.policy.SlowThreshold > 0 && dur >= tr.policy.SlowThreshold {
		keep = true
		t.mu.Lock()
		t.markKeepLocked("slow")
		t.mu.Unlock()
	}
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	if tr.n < len(tr.ring) {
		tr.n++
	}
	if keep && len(tr.kring) > 0 {
		t.mu.Lock()
		t.kept = true
		t.mu.Unlock()
		tr.kring[tr.knext] = t
		tr.knext = (tr.knext + 1) % len(tr.kring)
		if tr.kn < len(tr.kring) {
			tr.kn++
		}
	}
}

// newestFirst collects a ring's retained traces, newest first.
func newestFirst(ring []*Trace, next, n int) []*Trace {
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (next - 1 - i + 2*len(ring)) % len(ring)
		out = append(out, ring[idx])
	}
	return out
}

// Recent snapshots the retained traces, newest first, at most n of
// them (n <= 0 returns all retained).
func (tr *Tracer) Recent(n int) []TraceSnapshot {
	tr.mu.Lock()
	traces := newestFirst(tr.ring, tr.next, tr.n)
	tr.mu.Unlock()
	return snapshotAll(traces, n)
}

// Kept snapshots the tail-sampled keep ring — the retained slow,
// errored, shed and degraded traces — newest first, at most n of them
// (n <= 0 returns all kept).
func (tr *Tracer) Kept(n int) []TraceSnapshot {
	tr.mu.Lock()
	traces := newestFirst(tr.kring, tr.knext, tr.kn)
	tr.mu.Unlock()
	return snapshotAll(traces, n)
}

func snapshotAll(traces []*Trace, n int) []TraceSnapshot {
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.snapshot()
	}
	return out
}

// Lookup returns every retained trace recorded under the given id,
// newest first — kept traces included, so a slow or degraded query
// stays addressable by request ID long after the recent ring has
// rotated past it. One request id can map to several traces on a
// shard process (the stats and find phases of one fan-out each record
// a trace).
func (tr *Tracer) Lookup(id string) []TraceSnapshot {
	tr.mu.Lock()
	seen := make(map[*Trace]bool)
	var traces []*Trace
	for _, t := range newestFirst(tr.kring, tr.knext, tr.kn) {
		if t.id == id && !seen[t] {
			seen[t] = true
			traces = append(traces, t)
		}
	}
	for _, t := range newestFirst(tr.ring, tr.next, tr.n) {
		if t.id == id && !seen[t] {
			seen[t] = true
			traces = append(traces, t)
		}
	}
	tr.mu.Unlock()
	return snapshotAll(traces, 0)
}

// Len returns how many traces the recent ring currently retains.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.n
}
