package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, LogConfig{Format: "json", Level: "info", NoStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("request", "rid", "abc123", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%s)", err, buf.String())
	}
	if rec["rid"] != "abc123" || rec["msg"] != "request" {
		t.Fatalf("record = %v", rec)
	}
	if _, hasTime := rec["time"]; hasTime {
		t.Fatalf("NoStamp record still carries time: %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, LogConfig{Format: "text", NoStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("request", "rid", "abc123")
	if got := buf.String(); !strings.Contains(got, "rid=abc123") || strings.Contains(got, "time=") {
		t.Fatalf("text record = %q", got)
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, LogConfig{Level: "warn", NoStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("suppressed")
	l.Warn("visible")
	if got := buf.String(); strings.Contains(got, "suppressed") || !strings.Contains(got, "visible") {
		t.Fatalf("level filter broken: %q", got)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, LogConfig{Format: "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, LogConfig{Level: "loud"}); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestNewLoggerDeterministic: with NoStamp, identical log calls must
// produce identical bytes run over run — the property golden E2E
// tests and the -stamp=false harness diffs rely on.
func TestNewLoggerDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		l, err := NewLogger(&buf, LogConfig{Format: "json", NoStamp: true})
		if err != nil {
			t.Fatal(err)
		}
		l.Info("request", "method", "GET", "path", "/v1/find", "status", 200, "rid", "fixed")
		l.Warn("shard down", "shard", 1)
		return buf.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("log output not deterministic:\n%q\n%q", first, got)
		}
	}
}
