package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestKeepRingSurvivesFlood is the tail-sampling contract: a slow,
// errored or degraded trace must stay retrievable by request ID after
// far more than capacity fast healthy traces have rotated the recent
// ring.
func TestKeepRingSurvivesFlood(t *testing.T) {
	tr := NewTracer(8)

	_, slow := tr.Start(context.Background(), "GET /v1/find", "rid-degraded")
	slow.Keep("degraded")
	slow.Finish()
	if !slow.WasKept() {
		t.Fatal("explicitly marked trace was not kept")
	}

	for i := 0; i < 100; i++ { // 100 fast-OK traces through an 8-slot ring
		_, fast := tr.Start(context.Background(), "GET /v1/find", fmt.Sprintf("rid-fast-%d", i))
		fast.Finish()
		if fast.WasKept() {
			t.Fatalf("fast trace %d was kept", i)
		}
	}

	if got := tr.Lookup("rid-degraded"); len(got) != 1 {
		t.Fatalf("Lookup(rid-degraded) = %d traces after flood, want 1", len(got))
	} else if got[0].Attrs["keep"] != "degraded" {
		t.Fatalf("kept trace attrs = %v, want keep=degraded", got[0].Attrs)
	}
	if got := tr.Lookup("rid-fast-0"); len(got) != 0 {
		t.Fatalf("evicted fast trace still retrievable: %d", len(got))
	}
	if kept := tr.Kept(0); len(kept) != 1 || kept[0].ID != "rid-degraded" {
		t.Fatalf("Kept(0) = %+v, want exactly rid-degraded", kept)
	}
}

// TestKeepRingSlowThreshold verifies the duration-based keep path:
// traces at or over the threshold are retained without any explicit
// mark, labeled keep=slow.
func TestKeepRingSlowThreshold(t *testing.T) {
	tr := NewTracer(4)
	tr.SetKeepPolicy(KeepPolicy{Capacity: 4, SlowThreshold: time.Nanosecond})

	_, trace := tr.Start(context.Background(), "GET /v1/find", "rid-slow")
	time.Sleep(time.Microsecond)
	trace.Finish()
	if !trace.WasKept() {
		t.Fatal("trace over the slow threshold was not kept")
	}
	got := tr.Lookup("rid-slow")
	if len(got) != 1 || got[0].Attrs["keep"] != "slow" {
		t.Fatalf("Lookup = %+v, want one trace with keep=slow", got)
	}
}

// TestKeepRingDisabled: a zero-capacity keep policy falls back to
// plain newest-N behavior.
func TestKeepRingDisabled(t *testing.T) {
	tr := NewTracer(2)
	tr.SetKeepPolicy(KeepPolicy{Capacity: 0})
	_, trace := tr.Start(context.Background(), "q", "rid-err")
	trace.Keep("error")
	trace.Finish()
	if trace.WasKept() {
		t.Fatal("trace kept with tail retention disabled")
	}
	for i := 0; i < 4; i++ {
		_, fast := tr.Start(context.Background(), "q", "rid-fill")
		fast.Finish()
	}
	if got := tr.Lookup("rid-err"); len(got) != 0 {
		t.Fatalf("Lookup found %d traces with retention disabled", len(got))
	}
}

// TestKeepRingBounded: the keep ring itself is a ring — a flood of
// kept traces evicts older kept traces, never grows without bound.
func TestKeepRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 20; i++ {
		_, trace := tr.Start(context.Background(), "q", fmt.Sprintf("kept-%d", i))
		trace.Keep("error")
		trace.Finish()
	}
	kept := tr.Kept(0)
	if len(kept) != 4 {
		t.Fatalf("Kept(0) = %d traces, want 4", len(kept))
	}
	if kept[0].ID != "kept-19" || kept[3].ID != "kept-16" {
		t.Fatalf("kept order = %s..%s, want kept-19..kept-16", kept[0].ID, kept[3].ID)
	}
}

// TestLookupMultipleTracesSameID: one request id can record several
// traces on a shard process (stats phase + find phase); Lookup must
// return them all without duplicates.
func TestLookupMultipleTracesSameID(t *testing.T) {
	tr := NewTracer(8)
	_, a := tr.Start(context.Background(), "GET /v1/shard/stats", "rid-1")
	a.Keep("error")
	a.Finish()
	_, b := tr.Start(context.Background(), "POST /v1/shard/find", "rid-1")
	b.Finish()
	got := tr.Lookup("rid-1")
	if len(got) != 2 {
		t.Fatalf("Lookup = %d traces, want 2 (a kept one and a recent one)", len(got))
	}
	names := map[string]bool{got[0].Name: true, got[1].Name: true}
	if !names["GET /v1/shard/stats"] || !names["POST /v1/shard/find"] {
		t.Fatalf("Lookup names = %v", names)
	}
}

// TestSpanIDsAndParents: spans get trace-local ids in start order,
// child spans reference their parent, and the trace-level parent span
// (the cross-process nesting hook) round-trips through the snapshot.
func TestSpanIDsAndParents(t *testing.T) {
	tr := NewTracer(2)
	_, trace := tr.Start(context.Background(), "GET /v1/find", "rid-span")
	trace.SetParentSpan("s7") // as if set from X-Expertfind-Span
	call := trace.StartSpan("shard0 find")
	attempt := trace.StartChildSpan(call.ID(), "attempt")
	attempt.End()
	call.End()
	trace.Finish()

	snap := tr.Lookup("rid-span")[0]
	if snap.ParentSpan != "s7" {
		t.Fatalf("ParentSpan = %q, want s7", snap.ParentSpan)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d spans", len(snap.Spans))
	}
	if snap.Spans[0].ID != "s1" || snap.Spans[0].Parent != "" {
		t.Fatalf("call span = %+v, want id s1, no parent", snap.Spans[0])
	}
	if snap.Spans[1].ID != "s2" || snap.Spans[1].Parent != "s1" {
		t.Fatalf("attempt span = %+v, want id s2 under s1", snap.Spans[1])
	}
}

// TestSnapshotJSONByteStable: snapshotting and marshaling the same
// finished trace twice must produce identical bytes — the assembled
// timeline is diffed and cached by the coordinator, so the encoding
// cannot depend on map iteration order or snapshot count.
func TestSnapshotJSONByteStable(t *testing.T) {
	tr := NewTracer(2)
	_, trace := tr.Start(context.Background(), "GET /v1/find", "rid-stable")
	trace.SetAttr("q", "golang experts")
	trace.SetAttr("a", "1")
	trace.SetAttr("z", "26")
	sp := trace.StartSpan("analyze")
	sp.SetAttr("terms", "3")
	sp.SetAttr("entities", "1")
	sp.End()
	trace.Keep("error")
	trace.Finish()

	first, err := json.Marshal(tr.Lookup("rid-stable"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := json.Marshal(tr.Lookup("rid-stable"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("snapshot JSON unstable:\n%s\n%s", first, again)
		}
	}
}

// TestConcurrentRecordAndLookup hammers record, Lookup, Kept and
// Recent from concurrent goroutines; run under -race this is the
// retention layer's thread-safety gate.
func TestConcurrentRecordAndLookup(t *testing.T) {
	tr := NewTracer(16)
	tr.SetKeepPolicy(KeepPolicy{Capacity: 16, SlowThreshold: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("rid-%d-%d", w, i)
				_, trace := tr.Start(context.Background(), "q", id)
				sp := trace.StartSpan("stage")
				sp.End()
				if i%3 == 0 {
					trace.Keep("error")
				}
				trace.Finish()
				switch i % 4 {
				case 0:
					tr.Lookup(id)
				case 1:
					tr.Kept(4)
				case 2:
					tr.Recent(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Kept(0)); got != 16 {
		t.Fatalf("Kept(0) = %d, want full ring of 16", got)
	}
}
