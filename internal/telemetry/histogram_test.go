package telemetry

import (
	"math"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 1, 3)
	if b[0] != 0.001 {
		t.Fatalf("first bound = %v, want 0.001", b[0])
	}
	if last := b[len(b)-1]; last < 1 {
		t.Fatalf("last bound = %v, want >= 1", last)
	}
	for i := 1; i < len(b); i++ {
		ratio := b[i] / b[i-1]
		want := math.Pow(10, 1.0/3)
		if math.Abs(ratio-want) > 1e-9 {
			t.Fatalf("bucket ratio %v at %d, want %v", ratio, i, want)
		}
	}
	// 3 per decade over 3 decades: 10 bounds (both endpoints included).
	if len(b) != 10 {
		t.Fatalf("len = %d, want 10", len(b))
	}
}

func TestLogBucketsDefaultsAndPanics(t *testing.T) {
	if n := len(LogBuckets(0.001, 0.01, 0)); n != 11 {
		t.Errorf("perDecade<1 should select 10/decade, got %d bounds", n)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogBuckets(%v, %v, 1) did not panic", bad[0], bad[1])
				}
			}()
			LogBuckets(bad[0], bad[1], 1)
		}()
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4, 8})
	// 10 observations uniformly in (0,1]: every rank interpolates
	// inside the first bucket.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i) / 10)
	}
	d := h.Snapshot()
	if got := d.Quantile(0.5); got != 0.5 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := d.Quantile(1); got != 1.0 {
		t.Errorf("p100 = %v, want 1.0", got)
	}
	if got := d.Quantile(0); got != 0.0 {
		t.Errorf("p0 = %v, want 0", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q2", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	d := h.Snapshot()
	// rank(0.5) = 2: halfway through the two counts of bucket (1,2].
	if got := d.Quantile(0.5); got != 1.5 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	// rank(0.75) = 3: the end of bucket (1,2].
	if got := d.Quantile(0.75); got != 2 {
		t.Errorf("p75 = %v, want 2", got)
	}
	// rank(1) = 4: the end of the last finite bucket (2,4].
	if got := d.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
}

func TestQuantileOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q3", "", []float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // +Inf overflow bucket
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want largest finite bound 2", got)
	}
	// Out-of-range q values clamp.
	if got := h.Snapshot().Quantile(7); got != 2 {
		t.Errorf("clamped quantile = %v, want 2", got)
	}
}
