package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves a registry in the Prometheus text exposition
// format — mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves a tracer's recent traces as a JSON array,
// newest first — mount it at /debug/traces. The optional ?n= query
// parameter limits how many traces are returned.
func TracesHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "invalid n " + strconv.Quote(v)})
				return
			}
			n = parsed
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Recent(n))
	})
}
