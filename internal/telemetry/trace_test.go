package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTracer(8)
	ctx, trace := tr.Start(context.Background(), "GET /v1/find", "req-1")
	if got := TraceFrom(ctx); got != trace {
		t.Fatal("TraceFrom did not return the started trace")
	}
	if trace.ID() != "req-1" {
		t.Fatalf("ID() = %q, want req-1", trace.ID())
	}
	trace.SetAttr("q", "java expert")
	for _, stage := range []string{"analyze", "traverse", "index_match", "aggregate_rank"} {
		sp := trace.StartSpan(stage)
		sp.SetAttr("stage", stage)
		sp.End()
	}
	trace.Finish()
	trace.Finish() // idempotent: must not double-publish

	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("Recent(0) returned %d traces", len(recent))
	}
	snap := recent[0]
	if snap.ID != "req-1" || snap.Attrs["q"] != "java expert" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	for i, want := range []string{"analyze", "traverse", "index_match", "aggregate_rank"} {
		if snap.Spans[i].Name != want {
			t.Errorf("span %d = %q, want %q", i, snap.Spans[i].Name, want)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, trace := tr.Start(context.Background(), "q", fmt.Sprintf("id-%d", i))
		trace.Finish()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tr.Len())
	}
	recent := tr.Recent(0)
	want := []string{"id-9", "id-8", "id-7", "id-6"} // newest first
	if len(recent) != len(want) {
		t.Fatalf("Recent(0) returned %d traces, want %d", len(recent), len(want))
	}
	for i, id := range want {
		if recent[i].ID != id {
			t.Errorf("recent[%d].ID = %q, want %q", i, recent[i].ID, id)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != "id-9" {
		t.Fatalf("Recent(2) = %d traces, first %q", len(got), got[0].ID)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	// Instrumented code must run untouched on an untraced context.
	trace := TraceFrom(context.Background())
	if trace != nil {
		t.Fatal("TraceFrom on a bare context should be nil")
	}
	if trace.ID() != "" {
		t.Fatalf("nil ID() = %q", trace.ID())
	}
	trace.SetAttr("k", "v")
	sp := trace.StartSpan("stage")
	sp.SetAttr("k", "v")
	sp.End()
	trace.Finish()
}

func TestTracerGeneratesID(t *testing.T) {
	tr := NewTracer(1)
	_, trace := tr.Start(context.Background(), "q", "")
	if len(trace.ID()) != 16 {
		t.Fatalf("generated ID = %q, want 16 hex chars", trace.ID())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, trace := tr.Start(context.Background(), "q", "")
				sp := trace.StartSpan("stage")
				sp.End()
				trace.Finish()
				if i%50 == 0 {
					_ = tr.Recent(0)
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 16 {
		t.Fatalf("Len() = %d, want 16", tr.Len())
	}
}
