package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig selects how a process renders its structured logs — the
// -log-format / -log-level / -log-stamp flag surface of the binaries.
type LogConfig struct {
	// Format is "text" (default, human-readable key=value) or "json"
	// (one JSON object per line, for log pipelines).
	Format string
	// Level is "debug", "info" (default), "warn" or "error".
	Level string
	// NoStamp drops the time attribute from every record, making log
	// output byte-deterministic for golden tests and diffable harness
	// runs (the -stamp=false convention the load harness already uses).
	NoStamp bool
}

// NewLogger builds a slog.Logger writing structured records to w
// according to cfg. Unknown formats or levels are errors, so a typo'd
// flag fails at startup instead of silently logging at the wrong
// level.
func NewLogger(w io.Writer, cfg LogConfig) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(cfg.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", cfg.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	if cfg.NoStamp {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	switch strings.ToLower(cfg.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", cfg.Format)
	}
}
