package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds: half a
// millisecond up to ten seconds, the range a query or HTTP request in
// this system can plausibly span.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets ("le" upper
// bounds) and tracks their sum — enough to derive rates and quantile
// estimates in Prometheus. All methods are safe for concurrent use.
//
// A value equal to a bucket's upper bound counts into that bucket
// (the Prometheus "less than or equal" convention); values above the
// last bound count only into the implicit +Inf bucket.
type Histogram struct {
	upper  []float64 // sorted upper bounds
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// normalizeBuckets sorts and deduplicates the bounds, defaulting nil
// (or empty) to DefBuckets and dropping a trailing +Inf (implicit).
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	out := b[:0]
	for i, v := range b {
		if i > 0 && v == b[i-1] {
			continue
		}
		out = append(out, v)
	}
	if n := len(out); n > 0 && out[n-1] > 1e308 {
		out = out[:n-1]
	}
	return out
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound ≥ v; len(upper) ⇒ +Inf
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// timing a code section:
//
//	defer hist.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramData is a histogram snapshot. Counts are per-bucket (not
// cumulative), with one extra trailing entry for the +Inf overflow;
// Count is their sum, so a rendered exposition is always internally
// consistent even when the snapshot races concurrent observations.
type HistogramData struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

func (h *Histogram) snapshot() *HistogramData {
	d := &HistogramData{Buckets: h.upper, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
		d.Count += d.Counts[i]
	}
	d.Sum = h.sum.Load()
	return d
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Snapshot returns a point-in-time copy of the histogram, suitable
// for quantile estimation outside a registry scrape.
func (h *Histogram) Snapshot() *HistogramData { return h.snapshot() }

// LogBuckets returns perDecade log-spaced bucket bounds per decade
// from min up to and including the first bound >= max — the natural
// bucket layout for latency, where relative (not absolute) resolution
// matters across four or five orders of magnitude. min must be
// positive and max > min; perDecade < 1 selects 10.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min {
		panic("telemetry: LogBuckets requires 0 < min < max")
	}
	if perDecade < 1 {
		perDecade = 10
	}
	var out []float64
	for i := 0; ; i++ {
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly within
// the bucket holding the target rank (the same estimator Prometheus's
// histogram_quantile uses). The first bucket interpolates from 0; a
// rank landing in the +Inf overflow bucket reports the largest finite
// bound. An empty histogram reports 0.
func (d *HistogramData) Quantile(q float64) float64 {
	if d.Count == 0 || len(d.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	cum := uint64(0)
	for i, ub := range d.Buckets {
		prev := cum
		cum += d.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = d.Buckets[i-1]
			}
			if d.Counts[i] == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(prev))/float64(d.Counts[i])
		}
	}
	return d.Buckets[len(d.Buckets)-1]
}
