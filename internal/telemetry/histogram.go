package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds: half a
// millisecond up to ten seconds, the range a query or HTTP request in
// this system can plausibly span.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets ("le" upper
// bounds) and tracks their sum — enough to derive rates and quantile
// estimates in Prometheus. All methods are safe for concurrent use.
//
// A value equal to a bucket's upper bound counts into that bucket
// (the Prometheus "less than or equal" convention); values above the
// last bound count only into the implicit +Inf bucket.
type Histogram struct {
	upper  []float64 // sorted upper bounds
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// normalizeBuckets sorts and deduplicates the bounds, defaulting nil
// (or empty) to DefBuckets and dropping a trailing +Inf (implicit).
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	out := b[:0]
	for i, v := range b {
		if i > 0 && v == b[i-1] {
			continue
		}
		out = append(out, v)
	}
	if n := len(out); n > 0 && out[n-1] > 1e308 {
		out = out[:n-1]
	}
	return out
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound ≥ v; len(upper) ⇒ +Inf
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// timing a code section:
//
//	defer hist.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramData is a histogram snapshot. Counts are per-bucket (not
// cumulative), with one extra trailing entry for the +Inf overflow;
// Count is their sum, so a rendered exposition is always internally
// consistent even when the snapshot races concurrent observations.
type HistogramData struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

func (h *Histogram) snapshot() *HistogramData {
	d := &HistogramData{Buckets: h.upper, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
		d.Count += d.Counts[i]
	}
	d.Sum = h.sum.Load()
	return d
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 { return h.sum.Load() }
