package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the metric families a Registry holds.
type MetricType int

// The supported metric types.
const (
	CounterType MetricType = iota
	GaugeType
	HistogramType
)

// String names the type as it appears in Prometheus TYPE lines.
func (t MetricType) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	}
	return "untyped"
}

// atomicFloat is a float64 updatable without locks (CAS on the bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. All methods are safe
// for concurrent use.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative increments panic (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decrement")
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// family is one named metric with its children (one per label-value
// combination; the empty combination for unlabeled metrics).
type family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	buckets    []float64      // histogram families only
	fn         func() float64 // gauge-func families only

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | *Histogram, keyed by joined label values
	order    []string       // child keys in first-use order (stable exposition)
}

// labelKey joins label values with a separator that cannot appear in
// them unescaped ambiguity-free (0xff is invalid UTF-8).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (fam *family) child(values []string, make func() any) any {
	if len(values) != len(fam.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s expects %d label values, got %d",
			fam.name, len(fam.labelNames), len(values)))
	}
	key := labelKey(values)
	fam.mu.RLock()
	c, ok := fam.children[key]
	fam.mu.RUnlock()
	if ok {
		return c
	}
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if c, ok := fam.children[key]; ok {
		return c
	}
	c = make()
	fam.children[key] = c
	fam.order = append(fam.order, key)
	return c
}

// Registry holds metric families and renders them. The zero value is
// not usable; create registries with NewRegistry. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use.
// Re-registering an existing name is idempotent when the type and
// label names match, and panics otherwise — a name collision between
// packages is a programming error worth failing loudly on.
func (r *Registry) register(name, help string, typ MetricType, labelNames []string, buckets []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fam, ok := r.families[name]; ok {
		if fam.typ != typ || !equalStrings(fam.labelNames, labelNames) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with different type or labels", name))
		}
		return fam
	}
	fam := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: labelNames,
		buckets:    buckets,
		children:   make(map[string]any),
	}
	r.families[name] = fam
	r.order = append(r.order, name)
	return fam
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	fam := r.register(name, help, CounterType, nil, nil)
	return fam.child(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, CounterType, labelNames, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.child(labelValues, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	fam := r.register(name, help, GaugeType, nil, nil)
	return fam.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, GaugeType, labelNames, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.child(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (uptime, pool sizes, ...). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	fam := r.register(name, help, GaugeType, nil, nil)
	fam.fn = fn
}

// Histogram registers (or finds) an unlabeled histogram over the
// given bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	b := normalizeBuckets(buckets)
	fam := r.register(name, help, HistogramType, nil, b)
	return fam.child(nil, func() any { return newHistogram(fam.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or finds) a labeled histogram family over
// the given bucket upper bounds (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	b := normalizeBuckets(buckets)
	return &HistogramVec{r.register(name, help, HistogramType, labelNames, b)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.child(labelValues, func() any { return newHistogram(v.fam.buckets) }).(*Histogram)
}

// Sample is one snapshotted metric child.
type Sample struct {
	LabelValues []string
	Value       float64        // counters and gauges
	Hist        *HistogramData // histograms only
}

// FamilySnapshot is one snapshotted metric family.
type FamilySnapshot struct {
	Name       string
	Help       string
	Type       MetricType
	LabelNames []string
	Samples    []Sample
}

// Gather snapshots every family, in registration order, children in
// first-use order. The snapshot is consistent per metric (atomic
// reads), not across metrics — the usual scrape semantics.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, fam := range fams {
		fs := FamilySnapshot{Name: fam.name, Help: fam.help, Type: fam.typ, LabelNames: fam.labelNames}
		if fam.fn != nil {
			fs.Samples = append(fs.Samples, Sample{Value: fam.fn()})
			out = append(out, fs)
			continue
		}
		fam.mu.RLock()
		keys := make([]string, len(fam.order))
		copy(keys, fam.order)
		children := make([]any, 0, len(keys))
		for _, k := range keys {
			children = append(children, fam.children[k])
		}
		fam.mu.RUnlock()
		for i, c := range children {
			var values []string
			if keys[i] != "" || len(fam.labelNames) > 0 {
				values = strings.Split(keys[i], "\xff")
			}
			s := Sample{LabelValues: values}
			switch m := c.(type) {
			case *Counter:
				s.Value = m.Value()
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Hist = m.snapshot()
			}
			fs.Samples = append(fs.Samples, s)
		}
		out = append(out, fs)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Samples {
			if s.Hist != nil {
				writeHistogramSample(&sb, fam, s)
				continue
			}
			sb.WriteString(fam.Name)
			writeLabels(&sb, fam.LabelNames, s.LabelValues, "", "")
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.Value))
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeHistogramSample(sb *strings.Builder, fam FamilySnapshot, s Sample) {
	cum := uint64(0)
	for i, ub := range s.Hist.Buckets {
		cum += s.Hist.Counts[i]
		sb.WriteString(fam.Name)
		sb.WriteString("_bucket")
		writeLabels(sb, fam.LabelNames, s.LabelValues, "le", formatFloat(ub))
		fmt.Fprintf(sb, " %d\n", cum)
	}
	sb.WriteString(fam.Name)
	sb.WriteString("_bucket")
	writeLabels(sb, fam.LabelNames, s.LabelValues, "le", "+Inf")
	fmt.Fprintf(sb, " %d\n", s.Hist.Count) // Count sums all buckets incl. overflow
	sb.WriteString(fam.Name)
	sb.WriteString("_sum")
	writeLabels(sb, fam.LabelNames, s.LabelValues, "", "")
	fmt.Fprintf(sb, " %s\n", formatFloat(s.Hist.Sum))
	sb.WriteString(fam.Name)
	sb.WriteString("_count")
	writeLabels(sb, fam.LabelNames, s.LabelValues, "", "")
	fmt.Fprintf(sb, " %d\n", s.Hist.Count)
}

// writeLabels renders {k="v",...}, appending the extra pair (the
// histogram le) when extraName is non-empty. Nothing is written when
// there are no labels at all.
func writeLabels(sb *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sort orders a gathered snapshot by family name and label values —
// handy for tests that want output independent of registration order.
func Sort(fams []FamilySnapshot) {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		sort.Slice(f.Samples, func(i, j int) bool {
			return labelKey(f.Samples[i].LabelValues) < labelKey(f.Samples[j].LabelValues)
		})
	}
}
