package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

var pipe = analysis.New(analysis.Options{})

func buildSmall(t testing.TB) *Index {
	t.Helper()
	ix := New()
	docs := []string{
		"michael phelps won the freestyle race at the swimming pool",      // 0: sport
		"my favourite php function returns the length of a string",        // 1: computer
		"copper is a great conductor because of its free electrons",       // 2: science
		"we had dinner at a lovely restaurant in milan near the duomo",    // 3: location
		"the swimming training was exhausting but the pool was beautiful", // 4: sport
		"php arrays and strings are easy, the function library is huge",   // 5: computer
	}
	for i, d := range docs {
		a, ok := pipe.Analyze(d, nil)
		if !ok {
			t.Fatalf("doc %d filtered", i)
		}
		ix.Add(DocID(i), a)
	}
	return ix
}

func TestScoreRanksTopicalDocsFirst(t *testing.T) {
	ix := buildSmall(t)
	need := pipe.AnalyzeNeed("who is the best freestyle swimmer in the pool?")
	got := ix.Score(need, 0.6)
	if len(got) < 2 {
		t.Fatalf("got %d matches, want >= 2", len(got))
	}
	// Docs 0 and 4 are the swimming docs; they must lead.
	lead := map[DocID]bool{got[0].Doc: true, got[1].Doc: true}
	if !lead[0] || !lead[4] {
		t.Errorf("top docs = %v, want {0,4}", got[:2])
	}
}

func TestScoreTermOnlyVsEntityOnly(t *testing.T) {
	ix := buildSmall(t)
	need := pipe.AnalyzeNeed("tell me about michael phelps")

	termOnly := ix.Score(need, 1.0)
	entityOnly := ix.Score(need, 0.0)

	// Doc 0 mentions phelps both textually and as an entity: it must
	// top both rankings.
	if len(termOnly) == 0 || termOnly[0].Doc != 0 {
		t.Errorf("term-only top = %v, want doc 0", termOnly)
	}
	if len(entityOnly) == 0 || entityOnly[0].Doc != 0 {
		t.Errorf("entity-only top = %v, want doc 0", entityOnly)
	}
}

func TestScoreOrderingAndPositivity(t *testing.T) {
	ix := buildSmall(t)
	need := pipe.AnalyzeNeed("php function string length")
	got := ix.Score(need, 0.6)
	for i, sd := range got {
		if sd.Score <= 0 {
			t.Errorf("doc %d score %v <= 0", sd.Doc, sd.Score)
		}
		if i > 0 && got[i-1].Score < sd.Score {
			t.Errorf("scores not descending at %d", i)
		}
	}
}

func TestScoreNoMatch(t *testing.T) {
	ix := buildSmall(t)
	need := pipe.AnalyzeNeed("zebra xylophone quixotic")
	if got := ix.Score(need, 0.6); len(got) != 0 {
		t.Errorf("got %v for unmatched need", got)
	}
}

func TestIRFMonotoneInRarity(t *testing.T) {
	ix := buildSmall(t)
	// "php" appears in 2 docs, "phelps" in 1: rarer term has higher IRF.
	irfPhelps := ix.IRF("phelp")
	irfPHP := ix.IRF("php")
	if ix.DocFreq("phelp") != 1 || ix.DocFreq("php") != 2 {
		t.Fatalf("df(phelp)=%d df(php)=%d", ix.DocFreq("phelp"), ix.DocFreq("php"))
	}
	if irfPhelps <= irfPHP {
		t.Errorf("IRF(phelp)=%v <= IRF(php)=%v", irfPhelps, irfPHP)
	}
	if ix.IRF("nonexistentterm") != 0 {
		t.Error("IRF of unseen term != 0")
	}
}

func TestEntityStatistics(t *testing.T) {
	ix := buildSmall(t)
	phelps, _ := kb.Builtin().EntityByLabel("Michael Phelps")
	if ix.EntityFreq(phelps.ID) != 1 {
		t.Errorf("EntityFreq(phelps) = %d, want 1", ix.EntityFreq(phelps.ID))
	}
	if ix.EIRF(phelps.ID) <= 0 {
		t.Error("EIRF(phelps) <= 0")
	}
	if ix.EIRF(kb.EntityID(9999)) != 0 {
		t.Error("EIRF of unseen entity != 0")
	}
}

func TestEntityWeightBoostsConfidentMentions(t *testing.T) {
	// Two docs with the same entity at different dScores: the more
	// confident one must score higher under entity-only matching.
	ix := New()
	phelps, _ := kb.Builtin().EntityByLabel("Michael Phelps")
	lo := analysis.Analyzed{
		Terms:    map[string]int{"x": 1},
		Entities: map[kb.EntityID]analysis.EntityStats{phelps.ID: {Freq: 1, DScore: 0.2}},
	}
	hi := analysis.Analyzed{
		Terms:    map[string]int{"y": 1},
		Entities: map[kb.EntityID]analysis.EntityStats{phelps.ID: {Freq: 1, DScore: 0.9}},
	}
	ix.Add(1, lo)
	ix.Add(2, hi)
	need := analysis.Analyzed{Entities: map[kb.EntityID]analysis.EntityStats{phelps.ID: {Freq: 1, DScore: 1}}}
	got := ix.Score(need, 0)
	if len(got) != 2 || got[0].Doc != 2 {
		t.Errorf("ranking = %v, want doc 2 first", got)
	}
	// Ratio must be (1+0.9)/(1+0.2).
	wantRatio := 1.9 / 1.2
	if r := got[0].Score / got[1].Score; math.Abs(r-wantRatio) > 1e-9 {
		t.Errorf("score ratio = %v, want %v", r, wantRatio)
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	ix := New()
	a, _ := pipe.Analyze("some text about things", nil)
	ix.Add(1, a)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	ix.Add(1, a)
}

func TestHasAndNumDocs(t *testing.T) {
	ix := buildSmall(t)
	if ix.NumDocs() != 6 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if !ix.Has(0) || ix.Has(99) {
		t.Error("Has wrong")
	}
}

// Property: alpha interpolates monotonically — the score of any doc
// under alpha is alpha·term + (1-alpha)·entity components; verify via
// endpoint reconstruction on random alphas.
func TestScoreAlphaInterpolation(t *testing.T) {
	ix := buildSmall(t)
	need := pipe.AnalyzeNeed("michael phelps freestyle swimming in milan")
	termScores := map[DocID]float64{}
	for _, sd := range ix.Score(need, 1) {
		termScores[sd.Doc] = sd.Score
	}
	entScores := map[DocID]float64{}
	for _, sd := range ix.Score(need, 0) {
		entScores[sd.Doc] = sd.Score
	}
	f := func(seed int64) bool {
		alpha := rand.New(rand.NewSource(seed)).Float64()
		for _, sd := range ix.Score(need, alpha) {
			want := alpha*termScores[sd.Doc] + (1-alpha)*entScores[sd.Doc]
			if math.Abs(sd.Score-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scoring is invariant to document insertion order.
func TestScoreInsertionOrderInvariance(t *testing.T) {
	texts := []string{
		"michael phelps is the greatest freestyle champion of all time",
		"that php string function has a subtle bug in the code",
		"copper is a conductor because the electrons are free to move",
		"the restaurant in milan where we had dinner was delightful",
	}
	analyzed := make([]analysis.Analyzed, len(texts))
	for i, s := range texts {
		a, ok := pipe.Analyze(s, nil)
		if !ok {
			t.Fatalf("doc %d filtered", i)
		}
		analyzed[i] = a
	}
	need := pipe.AnalyzeNeed("freestyle swimming phelps")

	build := func(order []int) []ScoredDoc {
		ix := New()
		for _, i := range order {
			ix.Add(DocID(i), analyzed[i])
		}
		return ix.Score(need, 0.6)
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("different match counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Errorf("order dependence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScore(b *testing.B) {
	ix := New()
	r := rand.New(rand.NewSource(1))
	vocab := []string{"swim", "pool", "php", "copper", "milan", "guitar", "game", "match", "train", "code"}
	for i := 0; i < 5000; i++ {
		terms := map[string]int{}
		for j := 0; j < 8; j++ {
			terms[vocab[r.Intn(len(vocab))]]++
		}
		ix.Add(DocID(i), analysis.Analyzed{Terms: terms})
	}
	need := analysis.Analyzed{Terms: map[string]int{"swim": 1, "pool": 1, "train": 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Score(need, 0.6)
	}
}

func TestMergeShards(t *testing.T) {
	texts := []string{
		"michael phelps is the greatest freestyle champion of all time",
		"that php string function has a subtle bug in the code",
		"copper is a conductor because the electrons are free to move",
		"the restaurant in milan where we had dinner was delightful",
	}
	analyzed := make([]analysis.Analyzed, len(texts))
	for i, s := range texts {
		a, ok := pipe.Analyze(s, nil)
		if !ok {
			t.Fatalf("doc %d filtered", i)
		}
		analyzed[i] = a
	}

	// Whole build vs two merged shards.
	whole := New()
	for i, a := range analyzed {
		whole.Add(DocID(i), a)
	}
	shardA, shardB := New(), New()
	shardA.Add(0, analyzed[0])
	shardA.Add(1, analyzed[1])
	shardB.Add(2, analyzed[2])
	shardB.Add(3, analyzed[3])
	shardA.Merge(shardB)

	if shardA.NumDocs() != whole.NumDocs() {
		t.Fatalf("doc counts: %d vs %d", shardA.NumDocs(), whole.NumDocs())
	}
	need := pipe.AnalyzeNeed("freestyle swimming phelps in milan")
	a := whole.Score(need, 0.6)
	b := shardA.Score(need, 0.6)
	if len(a) != len(b) {
		t.Fatalf("score lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Errorf("score %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMergeOverlapPanics(t *testing.T) {
	a, b := New(), New()
	doc := analysis.Analyzed{Terms: map[string]int{"x": 1}}
	a.Add(1, doc)
	b.Add(1, doc)
	defer func() {
		if recover() == nil {
			t.Error("overlapping merge did not panic")
		}
	}()
	a.Merge(b)
}
