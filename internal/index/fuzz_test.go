package index

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// FuzzReadIndex feeds arbitrary bytes to the binary index reader: it
// must reject or accept without panicking, and anything it accepts
// must be a structurally valid index.
func FuzzReadIndex(f *testing.F) {
	var buf bytes.Buffer
	if _, err := randomIndex(1, 20).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("EFIX"))
	f.Add([]byte{})
	f.Add([]byte("EFIX\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: basic invariants must hold.
		if ix.NumDocs() < 0 {
			t.Fatal("negative doc count")
		}
		for term, l := range ix.terms {
			if l.count > ix.NumDocs() {
				t.Fatalf("term %q has more postings than docs", term)
			}
		}
	})
}

// fuzzNeed derives an expertise need from raw fuzz input: whitespace
// fields become query terms (so corpus vocabulary can be seeded
// directly), entity ids and dScores are folded from the bytes.
func fuzzNeed(needText string, entitySeed uint32) analysis.Analyzed {
	need := analysis.Analyzed{
		Terms:    map[string]int{},
		Entities: map[kb.EntityID]analysis.EntityStats{},
	}
	for i, field := range strings.Fields(needText) {
		if i >= 12 {
			break
		}
		need.Terms[field] = 1 + i%3
	}
	for i := 0; i < int(entitySeed%5); i++ {
		id := kb.EntityID((int(entitySeed) + 13*i) % 60)
		need.Entities[id] = analysis.EntityStats{Freq: 1 + i, DScore: float64(entitySeed%101) / 100}
	}
	return need
}

// FuzzIndexScore throws arbitrary needs, alphas and ks at Score and
// ScoreTopK and checks the ranking contract: ordered by (score desc,
// doc asc), all scores positive and finite, every match indexed,
// byte-identical on repetition, bit-identical between the sequential
// index and a 3-shard split of the same documents, and the pruned
// top-k bit-identical to the first k of the exhaustive ranking.
func FuzzIndexScore(f *testing.F) {
	// Seeds drawn from the synthetic corpus vocabulary and entity space.
	f.Add("swim pool train", uint32(7), uint8(60), uint8(5))
	f.Add("php code", uint32(0), uint8(0), uint8(0))
	f.Add("copper atom wave unseenterm", uint32(49), uint8(100), uint8(1))
	f.Add("", uint32(3), uint8(33), uint8(200))

	corpus := randomDocs(1, 120, 0)
	flat := flatFromDocs(corpus)
	sharded := NewSharded(3)
	sharded.AddBatch(corpus)

	f.Fuzz(func(t *testing.T, needText string, entitySeed uint32, alphaByte, kByte uint8) {
		alpha := float64(alphaByte%101) / 100
		need := fuzzNeed(needText, entitySeed)

		got := flat.Score(need, alpha)
		for i, sd := range got {
			if !(sd.Score > 0) || math.IsInf(sd.Score, 0) || math.IsNaN(sd.Score) {
				t.Fatalf("rank %d: bad score %v", i, sd.Score)
			}
			if !flat.Has(sd.Doc) {
				t.Fatalf("rank %d: unknown doc %d", i, sd.Doc)
			}
			if i > 0 && scoredLess(sd, got[i-1]) {
				t.Fatalf("ranking out of order at %d: %+v before %+v", i, got[i-1], sd)
			}
		}
		assertScoredBitIdentical(t, "repeat", got, flat.Score(need, alpha))
		assertScoredBitIdentical(t, "sharded", got, sharded.Score(need, alpha))

		// Pruned top-k must be the first k of the exhaustive ranking,
		// bit for bit, on both the monolith and the sharded split.
		k := int(kByte)
		want := got
		if k > 0 && len(want) > k {
			want = want[:k]
		}
		assertScoredBitIdentical(t, "topk", want, flat.ScoreTopK(need, alpha, k, nil))
		assertScoredBitIdentical(t, "topk sharded", want, sharded.ScoreTopK(need, alpha, k, nil))
	})
}

// FuzzBlockPostingsRoundTrip builds blocked posting lists from fuzzed
// postings inserted in a fuzz-chosen rotation and checks the storage
// contract the pruner relies on: the canonical encoding is
// byte-identical regardless of insertion order, decoding returns
// exactly the inserted postings, and every skip entry's (maxDoc, maxW)
// bounds its block's members.
func FuzzBlockPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 9, 0, 200}, uint8(0))
	f.Add([]byte{0, 0, 0}, uint8(7))
	f.Add(bytes.Repeat([]byte{5, 1, 128}, 300), uint8(130))

	f.Fuzz(func(t *testing.T, data []byte, rot uint8) {
		var tps []termPosting
		var eps []entityPosting
		doc := DocID(0)
		for i := 0; i+2 < len(data) && len(tps) < 600; i += 3 {
			doc += DocID(data[i]%13) + 1 // strictly ascending: one posting per doc
			tf := int32(data[i+1]%7) + 1
			tps = append(tps, termPosting{doc: doc, tf: tf})
			eps = append(eps, entityPosting{doc: doc, ef: tf, dScore: float64(data[i+2]) / 255})
		}
		if len(tps) == 0 {
			return
		}

		// Insert in a rotated order; the canonical form must not care.
		tl, el := &termList{}, &entityList{}
		r := int(rot) % len(tps)
		for i := range tps {
			j := (i + r) % len(tps)
			tl.add(tps[j])
			el.add(eps[j])
		}
		wantT := newTermList(tps)
		wantE := newEntityList(eps)
		ct, ce := tl.canonical(), el.canonical()
		if !bytes.Equal(ct.data, wantT.data) {
			t.Fatalf("term encoding differs by insertion order (rot %d, %d postings)", r, len(tps))
		}
		if !bytes.Equal(ce.data, wantE.data) {
			t.Fatalf("entity encoding differs by insertion order (rot %d, %d postings)", r, len(tps))
		}

		// Decode round trip: sorted() must return the inserted postings.
		gotT, gotE := tl.sorted(), el.sorted()
		if len(gotT) != len(tps) || len(gotE) != len(eps) {
			t.Fatalf("round trip lost postings: %d/%d term, %d/%d entity",
				len(gotT), len(tps), len(gotE), len(eps))
		}
		for i := range tps {
			if gotT[i] != tps[i] {
				t.Fatalf("term posting %d: got %+v want %+v", i, gotT[i], tps[i])
			}
			if gotE[i] != eps[i] {
				t.Fatalf("entity posting %d: got %+v want %+v", i, gotE[i], eps[i])
			}
		}

		// Bound soundness: list and block maxima dominate their members.
		checkTermBounds(t, ct)
		checkEntityBounds(t, ce)
	})
}

func checkTermBounds(t *testing.T, l *termList) {
	t.Helper()
	var scratch []termPosting
	base := DocID(0)
	for i, bm := range l.blocks {
		scratch = l.decodeBlock(i, base, scratch[:0])
		if len(scratch) != bm.n {
			t.Fatalf("block %d decoded %d postings, skip entry says %d", i, len(scratch), bm.n)
		}
		for _, p := range scratch {
			if p.doc > bm.maxDoc {
				t.Fatalf("block %d: doc %d above skip maxDoc %d", i, p.doc, bm.maxDoc)
			}
			if w := float64(p.tf); w > bm.maxW || w > l.maxW {
				t.Fatalf("block %d: weight %g above bounds (block %g, list %g)", i, w, bm.maxW, l.maxW)
			}
		}
		if scratch[len(scratch)-1].doc != bm.maxDoc {
			t.Fatalf("block %d: skip maxDoc %d, last doc %d", i, bm.maxDoc, scratch[len(scratch)-1].doc)
		}
		base = bm.maxDoc
	}
}

func checkEntityBounds(t *testing.T, l *entityList) {
	t.Helper()
	var scratch []entityPosting
	base := DocID(0)
	for i, bm := range l.blocks {
		scratch = l.decodeBlock(i, base, scratch[:0])
		if len(scratch) != bm.n {
			t.Fatalf("block %d decoded %d postings, skip entry says %d", i, len(scratch), bm.n)
		}
		for _, p := range scratch {
			if p.doc > bm.maxDoc {
				t.Fatalf("block %d: doc %d above skip maxDoc %d", i, p.doc, bm.maxDoc)
			}
			if w := entityWeight(p); w > bm.maxW || w > l.maxW {
				t.Fatalf("block %d: weight %g above bounds (block %g, list %g)", i, w, bm.maxW, l.maxW)
			}
		}
		if scratch[len(scratch)-1].doc != bm.maxDoc {
			t.Fatalf("block %d: skip maxDoc %d, last doc %d", i, bm.maxDoc, scratch[len(scratch)-1].doc)
		}
		base = bm.maxDoc
	}
}

// FuzzShardedMergeEquivalence builds two disjoint random corpora with
// fuzz-chosen sizes and shard counts, merges one sharded index into
// the other (equal or re-routing path), and requires the result to
// score bit-identically to a monolithic index over the union.
func FuzzShardedMergeEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4), uint8(4), "swim pool")
	f.Add(int64(3), int64(4), uint8(3), uint8(5), "php copper milan")
	f.Add(int64(5), int64(6), uint8(1), uint8(16), "train match game atom")

	f.Fuzz(func(t *testing.T, seedA, seedB int64, shardsA, shardsB uint8, needText string) {
		nA, nB := int(shardsA%8)+1, int(shardsB%8)+1
		docsA := randomDocs(seedA, 40+int((seedA%7+7)%7)*10, 0)
		docsB := randomDocs(seedB, 40+int((seedB%7+7)%7)*10, 10_000)

		flat := flatFromDocs(append(append([]Doc(nil), docsA...), docsB...))
		a := NewSharded(nA)
		a.AddBatch(docsA)
		b := NewSharded(nB)
		b.AddBatch(docsB)
		a.Merge(b)

		if flat.NumDocs() != a.NumDocs() {
			t.Fatalf("merged doc count %d, want %d", a.NumDocs(), flat.NumDocs())
		}
		need := fuzzNeed(needText, uint32(seedA)+uint32(seedB))
		for _, alpha := range []float64{0, 0.6, 1} {
			assertScoredBitIdentical(t, "merge", flat.Score(need, alpha), a.Score(need, alpha))
		}
	})
}
