package index

import (
	"bytes"
	"testing"
)

// FuzzReadIndex feeds arbitrary bytes to the binary index reader: it
// must reject or accept without panicking, and anything it accepts
// must be a structurally valid index.
func FuzzReadIndex(f *testing.F) {
	var buf bytes.Buffer
	if _, err := randomIndex(1, 20).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("EFIX"))
	f.Add([]byte{})
	f.Add([]byte("EFIX\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: basic invariants must hold.
		if ix.NumDocs() < 0 {
			t.Fatal("negative doc count")
		}
		for term := range ix.terms {
			if len(ix.terms[term]) > ix.NumDocs() {
				t.Fatalf("term %q has more postings than docs", term)
			}
		}
	})
}
