package index

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// FuzzReadIndex feeds arbitrary bytes to the binary index reader: it
// must reject or accept without panicking, and anything it accepts
// must be a structurally valid index.
func FuzzReadIndex(f *testing.F) {
	var buf bytes.Buffer
	if _, err := randomIndex(1, 20).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("EFIX"))
	f.Add([]byte{})
	f.Add([]byte("EFIX\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: basic invariants must hold.
		if ix.NumDocs() < 0 {
			t.Fatal("negative doc count")
		}
		for term := range ix.terms {
			if len(ix.terms[term]) > ix.NumDocs() {
				t.Fatalf("term %q has more postings than docs", term)
			}
		}
	})
}

// fuzzNeed derives an expertise need from raw fuzz input: whitespace
// fields become query terms (so corpus vocabulary can be seeded
// directly), entity ids and dScores are folded from the bytes.
func fuzzNeed(needText string, entitySeed uint32) analysis.Analyzed {
	need := analysis.Analyzed{
		Terms:    map[string]int{},
		Entities: map[kb.EntityID]analysis.EntityStats{},
	}
	for i, field := range strings.Fields(needText) {
		if i >= 12 {
			break
		}
		need.Terms[field] = 1 + i%3
	}
	for i := 0; i < int(entitySeed%5); i++ {
		id := kb.EntityID((int(entitySeed) + 13*i) % 60)
		need.Entities[id] = analysis.EntityStats{Freq: 1 + i, DScore: float64(entitySeed%101) / 100}
	}
	return need
}

// FuzzIndexScore throws arbitrary needs and alphas at Score and
// checks the ranking contract: ordered by (score desc, doc asc), all
// scores positive and finite, every match indexed, byte-identical on
// repetition, and bit-identical between the sequential index and a
// 3-shard split of the same documents.
func FuzzIndexScore(f *testing.F) {
	// Seeds drawn from the synthetic corpus vocabulary and entity space.
	f.Add("swim pool train", uint32(7), uint8(60))
	f.Add("php code", uint32(0), uint8(0))
	f.Add("copper atom wave unseenterm", uint32(49), uint8(100))
	f.Add("", uint32(3), uint8(33))

	corpus := randomDocs(1, 120, 0)
	flat := flatFromDocs(corpus)
	sharded := NewSharded(3)
	sharded.AddBatch(corpus)

	f.Fuzz(func(t *testing.T, needText string, entitySeed uint32, alphaByte uint8) {
		alpha := float64(alphaByte%101) / 100
		need := fuzzNeed(needText, entitySeed)

		got := flat.Score(need, alpha)
		for i, sd := range got {
			if !(sd.Score > 0) || math.IsInf(sd.Score, 0) || math.IsNaN(sd.Score) {
				t.Fatalf("rank %d: bad score %v", i, sd.Score)
			}
			if !flat.Has(sd.Doc) {
				t.Fatalf("rank %d: unknown doc %d", i, sd.Doc)
			}
			if i > 0 && scoredLess(sd, got[i-1]) {
				t.Fatalf("ranking out of order at %d: %+v before %+v", i, got[i-1], sd)
			}
		}
		assertScoredBitIdentical(t, "repeat", got, flat.Score(need, alpha))
		assertScoredBitIdentical(t, "sharded", got, sharded.Score(need, alpha))
	})
}

// FuzzShardedMergeEquivalence builds two disjoint random corpora with
// fuzz-chosen sizes and shard counts, merges one sharded index into
// the other (equal or re-routing path), and requires the result to
// score bit-identically to a monolithic index over the union.
func FuzzShardedMergeEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4), uint8(4), "swim pool")
	f.Add(int64(3), int64(4), uint8(3), uint8(5), "php copper milan")
	f.Add(int64(5), int64(6), uint8(1), uint8(16), "train match game atom")

	f.Fuzz(func(t *testing.T, seedA, seedB int64, shardsA, shardsB uint8, needText string) {
		nA, nB := int(shardsA%8)+1, int(shardsB%8)+1
		docsA := randomDocs(seedA, 40+int((seedA%7+7)%7)*10, 0)
		docsB := randomDocs(seedB, 40+int((seedB%7+7)%7)*10, 10_000)

		flat := flatFromDocs(append(append([]Doc(nil), docsA...), docsB...))
		a := NewSharded(nA)
		a.AddBatch(docsA)
		b := NewSharded(nB)
		b.AddBatch(docsB)
		a.Merge(b)

		if flat.NumDocs() != a.NumDocs() {
			t.Fatalf("merged doc count %d, want %d", a.NumDocs(), flat.NumDocs())
		}
		need := fuzzNeed(needText, uint32(seedA)+uint32(seedB))
		for _, alpha := range []float64{0, 0.6, 1} {
			assertScoredBitIdentical(t, "merge", flat.Score(need, alpha), a.Score(need, alpha))
		}
	})
}
