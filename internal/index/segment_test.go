package index

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// storeOf builds a store whose sealed layout is given by boundaries:
// docs[0:boundaries[0]] is sealed first, then docs up to
// boundaries[1], and so on; the remainder stays in the memtable.
func storeOf(t *testing.T, docs []Doc, boundaries []int, o StoreOptions) *Store {
	t.Helper()
	if o.FlushDocs == 0 {
		o.FlushDocs = 1 << 30 // manual seals only
	}
	s, err := NewStore(t.TempDir(), o)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	prev := 0
	for _, b := range boundaries {
		if err := s.AddBatch(docs[prev:b]); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
		if err := s.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		prev = b
	}
	if err := s.AddBatch(docs[prev:]); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	return s
}

// segToIndex rebuilds an in-memory Index from a sealed segment via
// its merge source, exercising every list load.
func segToIndex(t *testing.T, r *SegmentReader) *Index {
	t.Helper()
	src := segmentMergeSource{r: r}
	ix := New()
	perDoc := map[DocID]analysis.Analyzed{}
	for _, d := range src.liveDocs() {
		perDoc[DocID(d)] = analysis.Analyzed{Terms: map[string]int{}, Entities: map[kb.EntityID]analysis.EntityStats{}}
	}
	for _, name := range src.termNames() {
		for _, p := range src.termPostings(name) {
			perDoc[p.doc].Terms[name] = int(p.tf)
		}
	}
	for _, e := range src.entityIDs() {
		for _, p := range src.entityPostings(kb.EntityID(e)) {
			perDoc[p.doc].Entities[kb.EntityID(e)] = analysis.EntityStats{Freq: int(p.ef), DScore: p.dScore}
		}
	}
	for d, a := range perDoc {
		ix.Add(d, a)
	}
	return ix
}

// A sealed segment file round-trips: every posting read back from
// disk (mmap and streamed) matches the index it was sealed from.
func TestSegmentRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		docs := randomDocs(seed, 300, 0)
		mono := flatFromDocs(docs)
		path := filepath.Join(t.TempDir(), "seg-000000.seg")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mono.WriteTo(f); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		f.Close()
		for _, stream := range []bool{false, true} {
			r, err := OpenSegment(path, stream)
			if err != nil {
				t.Fatalf("OpenSegment(stream=%v): %v", stream, err)
			}
			if r.NumDocs() != mono.NumDocs() {
				t.Fatalf("NumDocs %d, want %d", r.NumDocs(), mono.NumDocs())
			}
			assertIndexesEqual(t, mono, segToIndex(t, r))
			r.Close()
		}
	}
}

// Monolith WriteTo bytes, a sealed segment re-written through
// writeMerged, and Store.WriteTo over any layout are all identical:
// the canonical serialization does not depend on how documents were
// partitioned.
func TestStoreWriteToMatchesMonolith(t *testing.T) {
	docs := randomDocs(3, 400, 0)
	mono := flatFromDocs(docs)
	var want bytes.Buffer
	if _, err := mono.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for _, boundaries := range [][]int{nil, {400}, {100, 250}, {50, 100, 150, 399}} {
		s := storeOf(t, docs, boundaries, StoreOptions{})
		var got bytes.Buffer
		if _, err := s.WriteTo(&got); err != nil {
			t.Fatalf("Store.WriteTo(%v): %v", boundaries, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("layout %v: WriteTo bytes differ from monolith (%d vs %d bytes)",
				boundaries, got.Len(), want.Len())
		}
	}
}

// The differential grid: every (seed, layout, streaming mode, α, k)
// combination must rank bit-identically to the monolithic index and
// to the sharded index over the same documents.
func TestStoreScoringBitIdentical(t *testing.T) {
	for _, seed := range []int64{2, 11} {
		docs := randomDocs(seed, 500, 0)
		mono := flatFromDocs(docs)
		shard := NewSharded(3)
		shard.AddBatch(docs)
		for _, layout := range [][]int{nil, {500}, {170, 340}, {40, 90, 300, 460}} {
			for _, stream := range []bool{false, true} {
				s := storeOf(t, docs, layout, StoreOptions{ForceStream: stream})
				if s.NumDocs() != mono.NumDocs() {
					t.Fatalf("NumDocs %d, want %d", s.NumDocs(), mono.NumDocs())
				}
				r := rand.New(rand.NewSource(seed * 31))
				for q := 0; q < 12; q++ {
					need := randomNeed(r)
					for _, alpha := range []float64{0, 0.6, 1} {
						want := mono.Score(need, alpha)
						label := fmt.Sprintf("seed=%d layout=%v stream=%v q=%d α=%g", seed, layout, stream, q, alpha)
						assertScoredBitIdentical(t, label, s.Score(need, alpha), want)
						assertScoredBitIdentical(t, label+" sharded", shard.Score(need, alpha), want)
						for _, k := range []int{1, 3, 25} {
							wantK := want
							if len(wantK) > k {
								wantK = wantK[:k]
							}
							assertScoredBitIdentical(t, fmt.Sprintf("%s k=%d", label, k),
								s.ScoreTopK(need, alpha, k, nil), wantK)
						}
					}
				}
			}
		}
	}
}

// Deltas applied to a store — including removes and updates that
// tombstone documents inside sealed segments — must leave it
// bit-identical in statistics and ranking to a monolith rebuilt with
// the same mutations.
func TestStoreDeltaVsRebuild(t *testing.T) {
	docs := randomDocs(5, 400, 0)
	mono := flatFromDocs(docs)
	s := storeOf(t, docs, []int{150, 300}, StoreOptions{})

	r := rand.New(rand.NewSource(99))
	live := append([]Doc(nil), docs...)
	next := 5000
	for round := 0; round < 6; round++ {
		var d Delta
		// Remove a few random live docs (some sealed, some memtable).
		for i := 0; i < 5; i++ {
			j := r.Intn(len(live))
			d.Removes = append(d.Removes, live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Update a few in place.
		for i := 0; i < 4; i++ {
			j := r.Intn(len(live))
			newA := randomDocs(int64(next), 1, 0)[0].A
			d.Updates = append(d.Updates, DocUpdate{ID: live[j].ID, Old: live[j].A, New: newA})
			live[j].A = newA
			next++
		}
		// Add fresh docs.
		for i := 0; i < 6; i++ {
			nd := Doc{ID: DocID(next * 10), A: randomDocs(int64(next), 1, 0)[0].A}
			d.Adds = append(d.Adds, nd)
			live = append(live, nd)
			next++
		}
		s.ApplyDelta(d)
		for _, rm := range d.Removes {
			mono.Remove(rm.ID, rm.A)
		}
		for _, u := range d.Updates {
			mono.Update(u.ID, u.Old, u.New)
		}
		for _, a := range d.Adds {
			mono.Add(a.ID, a.A)
		}

		if s.NumDocs() != mono.NumDocs() {
			t.Fatalf("round %d: NumDocs %d, want %d", round, s.NumDocs(), mono.NumDocs())
		}
		for _, term := range []string{"swim", "php", "atom", "missing"} {
			if s.DocFreq(term) != mono.DocFreq(term) {
				t.Fatalf("round %d: DocFreq(%q) %d, want %d", round, term, s.DocFreq(term), mono.DocFreq(term))
			}
			if math.Float64bits(s.IRF(term)) != math.Float64bits(mono.IRF(term)) {
				t.Fatalf("round %d: IRF(%q) differs", round, term)
			}
		}
		for e := kb.EntityID(0); e < 50; e += 7 {
			if s.EntityFreq(e) != mono.EntityFreq(e) {
				t.Fatalf("round %d: EntityFreq(%d) %d, want %d", round, e, s.EntityFreq(e), mono.EntityFreq(e))
			}
		}
		for q := 0; q < 6; q++ {
			need := randomNeed(r)
			assertScoredBitIdentical(t, fmt.Sprintf("round %d q %d", round, q),
				s.Score(need, 0.6), mono.Score(need, 0.6))
			assertScoredBitIdentical(t, fmt.Sprintf("round %d q %d topk", round, q),
				s.ScoreTopK(need, 0.6, 10, nil), mono.ScoreTopK(need, 0.6, 10, nil))
		}
		// Removed docs are gone; live docs are present.
		if s.Has(d.Removes[0].ID) {
			t.Fatalf("round %d: removed doc %d still live", round, d.Removes[0].ID)
		}
		if !s.Has(d.Adds[0].ID) {
			t.Fatalf("round %d: added doc %d not live", round, d.Adds[0].ID)
		}
	}

	// Sealing the mutated memtable and compacting everything reclaims
	// all tombstones without changing a single ranking bit.
	before := s.Score(randomNeed(rand.New(rand.NewSource(1))), 0.6)
	if err := s.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	tombs := s.Status().Tombstones
	if tombs == 0 {
		t.Fatal("expected tombstones before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Status()
	if st.Tombstones != 0 || st.ReclaimedDocs != uint64(tombs) || len(st.Segments) != 1 {
		t.Fatalf("post-compact status: %+v (want 0 tombstones, %d reclaimed, 1 segment)", st, tombs)
	}
	after := s.Score(randomNeed(rand.New(rand.NewSource(1))), 0.6)
	assertScoredBitIdentical(t, "compaction", after, before)
	assertScoredBitIdentical(t, "compaction vs monolith", after, mono.Score(randomNeed(rand.New(rand.NewSource(1))), 0.6))

	// And the compacted store still serializes to the monolith bytes.
	var got, want bytes.Buffer
	if _, err := s.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if _, err := mono.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("compacted store bytes differ from rebuilt monolith")
	}
}

// Auto-seal at FlushDocs and the Maintain segment-count policy keep
// the store within its configured shape without changing results.
func TestStoreAutoSealAndMaintain(t *testing.T) {
	docs := randomDocs(8, 600, 0)
	mono := flatFromDocs(docs)
	s, err := NewStore(t.TempDir(), StoreOptions{FlushDocs: 50, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, d := range docs {
		if err := s.Add(d.ID, d.A); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if st := s.Status(); st.Seals < 10 {
		t.Fatalf("expected ≥10 auto-seals at FlushDocs=50, got %d", st.Seals)
	}
	for i := 0; i < 8; i++ {
		if err := s.Maintain(); err != nil {
			t.Fatalf("Maintain: %v", err)
		}
	}
	st := s.Status()
	if len(st.Segments) > 4+1 {
		t.Fatalf("maintain left %d segments, want ≤5", len(st.Segments))
	}
	if st.Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	need := randomNeed(rand.New(rand.NewSource(4)))
	assertScoredBitIdentical(t, "maintained", s.Score(need, 0.6), mono.Score(need, 0.6))
}

// A store reopened from its directory serves the sealed documents it
// persisted; a duplicated segment file is rejected at open.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	docs := randomDocs(12, 200, 0)
	s, err := NewStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Leftover temp files from a simulated crash must be swept.
	os.WriteFile(filepath.Join(dir, "seg-000009.seg.tmp"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "spill-junk"), []byte("junk"), 0o644)
	s.Close()

	s2, err := NewStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.NumDocs() != len(docs) {
		t.Fatalf("reopened NumDocs %d, want %d", s2.NumDocs(), len(docs))
	}
	need := randomNeed(rand.New(rand.NewSource(2)))
	assertScoredBitIdentical(t, "reopen", s2.Score(need, 0.6), flatFromDocs(docs).Score(need, 0.6))
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(leftovers) != 0 {
		t.Fatalf("leftover temp files survived reopen: %v", leftovers)
	}
	s2.Close()

	// Duplicate a segment file: the same doc now appears twice.
	seg, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	raw, err := os.ReadFile(seg[0])
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "seg-000777.seg"), raw, 0o644)
	if _, err := NewStore(dir, StoreOptions{}); err == nil {
		t.Fatal("NewStore accepted overlapping segments")
	}
}

// A failed seal rolls the frozen memtable (and tombstones it attracted)
// back, leaving the store unchanged; a retry after the fault clears
// succeeds.
func TestStoreSealFailureRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	docs := randomDocs(21, 120, 0)
	s, err := NewStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	need := randomNeed(rand.New(rand.NewSource(6)))
	want := s.Score(need, 0.6)

	// Sabotage the directory so the segment file cannot be created.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err == nil {
		t.Fatal("Seal succeeded without a store directory")
	}
	if st := s.Status(); len(st.Segments) != 0 || st.MemtableDocs != len(docs) {
		t.Fatalf("rollback left %+v", st)
	}
	assertScoredBitIdentical(t, "after failed seal", s.Score(need, 0.6), want)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatalf("retry seal: %v", err)
	}
	assertScoredBitIdentical(t, "after retry", s.Score(need, 0.6), want)
}

// OpenSegment rejects files that are not valid sealed segments.
func TestOpenSegmentRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	mono := randomIndex(9, 150)
	var buf bytes.Buffer
	if _, err := mono.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	writeTmp := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := OpenSegment(filepath.Join(dir, "absent.seg"), false); err == nil {
		t.Fatal("opened a missing file")
	}
	if _, err := OpenSegment(writeTmp("magic.seg", []byte("XXXX\x02")), false); err == nil {
		t.Fatal("accepted bad magic")
	}
	v1 := append([]byte("EFIX"), 0x01)
	if _, err := OpenSegment(writeTmp("v1.seg", v1), false); err == nil {
		t.Fatal("accepted a v1 header as a sealed segment")
	}
	for _, cut := range []int{1, 5, 12, len(full) / 2, len(full) - 1} {
		if _, err := OpenSegment(writeTmp("trunc.seg", full[:cut]), false); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	if _, err := OpenSegment(writeTmp("trail.seg", append(append([]byte(nil), full...), 0)), false); err == nil {
		t.Fatal("accepted trailing bytes")
	}

	// Random single-byte corruption either fails to open or opens
	// having fully validated structure — never panics.
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		corrupted := append([]byte(nil), full...)
		corrupted[r.Intn(len(corrupted))] ^= byte(1 + r.Intn(255))
		p := writeTmp("fuzz.seg", corrupted)
		if sr, err := OpenSegment(p, false); err == nil {
			sr.Close()
		}
	}
}

// The -race soak: queries, deltas and background seal/compaction all
// run concurrently; every query must observe some consistent store
// state, and the final state must match a serial rebuild.
func TestStoreConcurrentMaintenance(t *testing.T) {
	docs := randomDocs(14, 300, 0)
	s, err := NewStore(t.TempDir(), StoreOptions{FlushDocs: 40, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AddBatch(docs[:200]); err != nil {
		t.Fatal(err)
	}
	s.StartBackground(time.Millisecond)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				need := randomNeed(r)
				got := s.ScoreTopK(need, 0.6, 10, nil)
				for i := 1; i < len(got); i++ {
					if scoredLess(got[i], got[i-1]) {
						t.Errorf("unordered results under concurrency")
						return
					}
				}
			}
		}(w)
	}

	mono := flatFromDocs(docs[:200])
	for i := 200; i < 300; i++ {
		d := Delta{Adds: []Doc{docs[i]}}
		if i%3 == 0 {
			victim := docs[i-200]
			d.Removes = []Doc{victim}
			mono.Remove(victim.ID, victim.A)
		}
		s.ApplyDelta(d)
		mono.Add(docs[i].ID, docs[i].A)
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	need := randomNeed(rand.New(rand.NewSource(3)))
	assertScoredBitIdentical(t, "post-soak", s.Score(need, 0.6), mono.Score(need, 0.6))
	if st := s.Status(); st.LastError != "" {
		t.Fatalf("background maintenance error: %s", st.LastError)
	}
}

// Accessor and explicit-stats paths: Dir/Path/Size on a sealed store,
// IRF/EIRF parity with the monolith (including unseen dimensions),
// and ScoreStats/ScoreStatsTopK under an external collection view —
// the shape the scatter coordinator scores shard slices with.
func TestStoreAccessorsAndExplicitStats(t *testing.T) {
	docs := randomDocs(5, 300, 0)
	mono := flatFromDocs(docs)
	s := storeOf(t, docs, []int{150}, StoreOptions{})
	if s.Dir() == "" {
		t.Fatal("Dir() empty")
	}
	seg := s.segs[0].r
	if seg.Path() == "" {
		t.Fatal("segment Path() empty")
	}
	if seg.Size() <= 0 {
		t.Fatalf("segment Size() = %d", seg.Size())
	}
	for _, term := range append(shardTestVocab(), "neverindexedterm") {
		if got, want := s.IRF(term), mono.IRF(term); got != want {
			t.Fatalf("IRF(%q) = %v, want %v", term, got, want)
		}
	}
	for e := 0; e < 60; e++ {
		if got, want := s.EIRF(kb.EntityID(e)), mono.EIRF(kb.EntityID(e)); got != want {
			t.Fatalf("EIRF(%d) = %v, want %v", e, got, want)
		}
	}
	r := rand.New(rand.NewSource(99))
	for q := 0; q < 8; q++ {
		need := randomNeed(r)
		for _, alpha := range []float64{0, 0.6, 1} {
			label := fmt.Sprintf("stats q=%d α=%g", q, alpha)
			assertScoredBitIdentical(t, label,
				s.ScoreStats(need, alpha, mono), mono.ScoreStats(need, alpha, mono))
			assertScoredBitIdentical(t, label+" k=5",
				s.ScoreStatsTopK(need, alpha, mono, 5, nil),
				mono.ScoreStatsTopK(need, alpha, mono, 5, nil))
		}
	}
}
