package index

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
	"expertfind/internal/telemetry"
)

// Segment-store metrics: lifecycle counters for the memtable → sealed
// → merged pipeline and gauges for the store's current shape.
var (
	mSegSeals = telemetry.Default().Counter(
		"expertfind_segment_seals_total",
		"Memtables sealed into immutable on-disk segments.")
	mSegCompactions = telemetry.Default().Counter(
		"expertfind_segment_compactions_total",
		"Segment merge/compaction rounds completed.")
	mSegReclaimed = telemetry.Default().Counter(
		"expertfind_segment_reclaimed_docs_total",
		"Tombstoned documents physically dropped by compaction.")
	mSegMaintErrs = telemetry.Default().Counter(
		"expertfind_segment_maintenance_errors_total",
		"Background seal or compaction rounds that failed (state rolled back).")
	mSegCount = telemetry.Default().Gauge(
		"expertfind_segment_segments",
		"Sealed segments currently serving queries.")
	mSegTombstones = telemetry.Default().Gauge(
		"expertfind_segment_tombstones",
		"Documents tombstoned in sealed segments, awaiting reclamation.")
	mSegMemDocs = telemetry.Default().Gauge(
		"expertfind_segment_memtable_docs",
		"Documents in the mutable memtable, not yet sealed to disk.")
	mSegDiskBytes = telemetry.Default().Gauge(
		"expertfind_segment_disk_bytes",
		"Total bytes of sealed segment files on disk.")
)

// segSuffix names sealed segment files: seg-<seq>.seg in the store
// directory, sequence numbers monotonically increasing across seals
// and compactions.
const segSuffix = ".seg"

// StoreOptions configures a segment store. The zero value selects
// sensible defaults.
type StoreOptions struct {
	// FlushDocs is the memtable document count that triggers a seal
	// (default 50000).
	FlushDocs int
	// MaxSegments is the sealed-segment count above which the
	// maintenance policy compacts the smallest half (default 8).
	MaxSegments int
	// ReclaimFraction is the tombstone share of the live document
	// count above which maintenance compacts every segment carrying
	// tombstones (default 0.2).
	ReclaimFraction float64
	// ForceStream disables mmap in favor of positioned reads.
	ForceStream bool
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.FlushDocs <= 0 {
		o.FlushDocs = 50000
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.ReclaimFraction <= 0 {
		o.ReclaimFraction = 0.2
	}
	return o
}

// storeSegment is one sealed segment plus its tombstone set. While a
// seal is writing the disk file the segment briefly serves from the
// frozen memtable (frozen != nil); once the file is durable it serves
// from the SegmentReader. Tombstones are per-segment on purpose: a
// document updated out of segment A and re-added lives in the
// memtable (and later in segment B), so a store-global tombstone set
// would wrongly suppress the live copy.
type storeSegment struct {
	frozen  *Index // non-nil only while the seal write is in flight
	r       *SegmentReader
	path    string
	tomb    map[DocID]analysis.Analyzed
	merging bool
}

func (g *storeSegment) numDocs() int {
	if g.frozen != nil {
		return g.frozen.NumDocs()
	}
	return g.r.NumDocs()
}

func (g *storeSegment) has(id DocID) bool {
	if g.frozen != nil {
		return g.frozen.Has(id)
	}
	return g.r.Has(id)
}

func (g *storeSegment) docFreq(t string) int {
	if g.frozen != nil {
		return g.frozen.DocFreq(t)
	}
	return g.r.docFreq(t)
}

func (g *storeSegment) entityFreq(e kb.EntityID) int {
	if g.frozen != nil {
		return g.frozen.EntityFreq(e)
	}
	return g.r.entityFreq(e)
}

func (g *storeSegment) size() int64 {
	if g.r != nil {
		return g.r.Size()
	}
	return 0
}

// planView returns the index view to score this segment's share of a
// plan: the frozen memtable directly, or the planned lists
// materialized from disk.
func (g *storeSegment) planView(plan queryPlan) *Index {
	if g.frozen != nil {
		return g.frozen
	}
	return g.r.planView(plan)
}

// acceptFilter narrows accept to documents not tombstoned in this
// segment.
func (g *storeSegment) acceptFilter(accept func(DocID) bool) func(DocID) bool {
	if len(g.tomb) == 0 {
		return accept
	}
	t := g.tomb
	if accept == nil {
		return func(d DocID) bool {
			_, dead := t[d]
			return !dead
		}
	}
	return func(d DocID) bool {
		_, dead := t[d]
		return !dead && accept(d)
	}
}

// mergeSrc returns the segment's streaming-merge view minus drop.
func (g *storeSegment) mergeSrc(drop map[DocID]analysis.Analyzed) mergeSource {
	if g.frozen != nil {
		return indexMergeSource{ix: g.frozen, drop: drop}
	}
	return segmentMergeSource{r: g.r, drop: drop}
}

// Store is a disk-backed segmented index: a mutable in-memory
// memtable absorbing writes, plus immutable sealed segments on disk,
// scored together under collection-global statistics. It implements
// Searcher and StatsSearcher with rankings bit-identical to a
// monolithic Index over the same live documents, for any segment
// layout:
//
//   - planning folds per-segment document frequencies (minus
//     tombstone corrections) into exact global stats, so the query
//     plan equals the monolith's plan;
//   - each component (memtable, every segment) accumulates scores
//     with the same code and per-document addition chains as the
//     monolith, and live document sets are pairwise disjoint, so the
//     deterministic k-way merge reproduces the monolith's ranking.
//
// Writes (Add/AddBatch/ApplyDelta) take the store write lock; queries
// hold the read lock for their full duration, so a delta, seal or
// compaction swap is observed either entirely or not at all.
// Maintenance (Seal/Compact/Maintain) performs its disk I/O outside
// the store lock against immutable inputs and swaps results in under
// the write lock.
type Store struct {
	dir  string
	opts StoreOptions

	// maintMu serializes maintenance (seal and compaction I/O);
	// acquired before mu, never while holding it.
	maintMu sync.Mutex

	mu         sync.RWMutex
	mem        *Index
	segs       []*storeSegment
	tombTermDF map[string]int
	tombEntDF  map[kb.EntityID]int
	nTombs     int
	seq        int
	seals      uint64
	compacts   uint64
	reclaimed  uint64
	lastErr    error

	stop chan struct{}
	bg   sync.WaitGroup
}

var (
	_ Searcher      = (*Store)(nil)
	_ StatsSearcher = (*Store)(nil)
)

// NewStore creates or reopens a segment store rooted at dir. Existing
// seg-*.seg files are opened (fully validated) and served; leftover
// temporary files from an interrupted seal or compaction are removed.
func NewStore(dir string, o StoreOptions) (*Store, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		opts:       o,
		mem:        New(),
		tombTermDF: make(map[string]int),
		tombEntDF:  make(map[kb.EntityID]int),
		stop:       make(chan struct{}),
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	spills, _ := filepath.Glob(filepath.Join(dir, "spill-*"))
	for _, p := range append(leftovers, spills...) {
		os.Remove(p)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		r, err := OpenSegment(p, o.ForceStream)
		if err != nil {
			s.closeSegments()
			return nil, err
		}
		s.segs = append(s.segs, &storeSegment{r: r, path: p, tomb: map[DocID]analysis.Analyzed{}})
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d"+segSuffix, &n); err == nil && n >= s.seq {
			s.seq = n + 1
		}
	}
	if err := s.checkDisjoint(); err != nil {
		s.closeSegments()
		return nil, err
	}
	s.updateGauges()
	return s, nil
}

// checkDisjoint verifies no document appears in two segments — the
// invariant every scoring merge relies on. (Reopened stores have no
// tombstones, so any overlap is a corrupted directory.)
func (s *Store) checkDisjoint() error {
	total := 0
	for _, g := range s.segs {
		total += g.numDocs()
	}
	all := make([]DocID, 0, total)
	for _, g := range s.segs {
		all = append(all, g.r.docs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			return fmt.Errorf("index: store %s: doc %d appears in two segments", s.dir, all[i])
		}
	}
	return nil
}

func (s *Store) closeSegments() {
	for _, g := range s.segs {
		if g.r != nil {
			g.r.Close()
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close stops background maintenance and releases every open segment.
// The memtable is not sealed; callers needing durability call Seal
// first.
func (s *Store) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.bg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeSegments()
	s.segs = nil
	return nil
}

// trackTomb / untrackTomb maintain the global df corrections that
// stats folding subtracts from the summed per-segment frequencies.
func (s *Store) trackTomb(a analysis.Analyzed) {
	s.nTombs++
	for t := range a.Terms {
		s.tombTermDF[t]++
	}
	for e := range a.Entities {
		s.tombEntDF[e]++
	}
}

func (s *Store) untrackTomb(a analysis.Analyzed) {
	s.nTombs--
	for t := range a.Terms {
		if s.tombTermDF[t]--; s.tombTermDF[t] == 0 {
			delete(s.tombTermDF, t)
		}
	}
	for e := range a.Entities {
		if s.tombEntDF[e]--; s.tombEntDF[e] == 0 {
			delete(s.tombEntDF, e)
		}
	}
}

// hasLocked reports whether id is live anywhere in the store.
func (s *Store) hasLocked(id DocID) bool {
	if s.mem.Has(id) {
		return true
	}
	for _, g := range s.segs {
		if g.has(id) {
			if _, dead := g.tomb[id]; !dead {
				return true
			}
		}
	}
	return false
}

// Add indexes an analyzed resource into the memtable, sealing to disk
// when the memtable reaches FlushDocs. Adding a live id panics, like
// Index.Add.
func (s *Store) Add(id DocID, a analysis.Analyzed) error {
	s.mu.Lock()
	if s.hasLocked(id) {
		s.mu.Unlock()
		panic("index: duplicate document")
	}
	s.mem.Add(id, a)
	due := s.mem.NumDocs() >= s.opts.FlushDocs
	mSegMemDocs.Set(float64(s.mem.NumDocs()))
	s.mu.Unlock()
	if due {
		return s.Seal()
	}
	return nil
}

// AddBatch bulk-indexes docs, sealing once afterwards if the memtable
// crossed FlushDocs.
func (s *Store) AddBatch(docs []Doc) error {
	s.mu.Lock()
	for _, d := range docs {
		if s.hasLocked(d.ID) {
			s.mu.Unlock()
			panic("index: duplicate document")
		}
		s.mem.Add(d.ID, d.A)
	}
	due := s.mem.NumDocs() >= s.opts.FlushDocs
	mSegMemDocs.Set(float64(s.mem.NumDocs()))
	s.mu.Unlock()
	if due {
		return s.Seal()
	}
	return nil
}

// ApplyDelta applies removes, updates and adds as one atomic step
// under the store write lock, mirroring Sharded.ApplyDelta: adds land
// in the memtable; a remove of a memtable document excises it
// directly, while a remove of a sealed document tombstones it in the
// one segment holding it live (postings reclaim at the next
// compaction); an update is remove-then-add. The memtable is never
// sealed here — ApplyDelta stays error-free and maintenance
// (background or explicit) persists the growth.
func (s *Store) ApplyDelta(d Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range d.Removes {
		s.removeLocked(r.ID, r.A)
	}
	for _, u := range d.Updates {
		s.removeLocked(u.ID, u.Old)
		s.addLocked(u.ID, u.New)
	}
	for _, a := range d.Adds {
		s.addLocked(a.ID, a.A)
	}
	mSegMemDocs.Set(float64(s.mem.NumDocs()))
	mSegTombstones.Set(float64(s.nTombs))
}

func (s *Store) addLocked(id DocID, a analysis.Analyzed) {
	if s.hasLocked(id) {
		panic("index: duplicate document")
	}
	s.mem.Add(id, a)
}

func (s *Store) removeLocked(id DocID, a analysis.Analyzed) {
	if s.mem.Has(id) {
		s.mem.Remove(id, a)
		return
	}
	for _, g := range s.segs {
		if !g.has(id) {
			continue
		}
		if _, dead := g.tomb[id]; dead {
			continue
		}
		g.tomb[id] = a
		s.trackTomb(a)
		return
	}
	panic("index: removing unknown document")
}

// Seal freezes the memtable into an immutable on-disk segment.
// Queries keep running throughout: the frozen memtable serves as a
// transient segment while its file is written, then the disk reader
// is swapped in. A write failure rolls the documents (and any
// tombstones they attracted meanwhile) back into the memtable.
func (s *Store) Seal() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return s.seal()
}

func (s *Store) seal() error {
	s.mu.Lock()
	if s.mem.NumDocs() == 0 {
		s.mu.Unlock()
		return nil
	}
	frozen := s.mem
	s.mem = New()
	seg := &storeSegment{frozen: frozen, tomb: map[DocID]analysis.Analyzed{}}
	s.segs = append(s.segs, seg)
	seq := s.seq
	s.seq++
	s.mu.Unlock()

	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d%s", seq, segSuffix))
	r, err := s.writeSegmentFile(path, []mergeSource{indexMergeSource{ix: frozen}})
	s.mu.Lock()
	if err != nil {
		// Roll back: drop the transient segment, resolve its
		// tombstones against the frozen postings, fold the survivors
		// back into the memtable.
		s.dropSegmentLocked(seg)
		for d, a := range seg.tomb {
			frozen.Remove(d, a)
			s.untrackTomb(a)
		}
		s.mem.Merge(frozen)
		s.mu.Unlock()
		return err
	}
	seg.frozen = nil
	seg.r = r
	seg.path = path
	s.seals++
	s.updateGauges()
	s.mu.Unlock()
	mSegSeals.Inc()
	return nil
}

func (s *Store) dropSegmentLocked(seg *storeSegment) {
	kept := s.segs[:0]
	for _, g := range s.segs {
		if g != seg {
			kept = append(kept, g)
		}
	}
	s.segs = kept
}

// writeSegmentFile streams the merged sources to a temp file, makes
// it durable, renames it into place and opens it validated.
func (s *Store) writeSegmentFile(path string, srcs []mergeSource) (*SegmentReader, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	spill, err := os.CreateTemp(s.dir, "spill-*")
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	defer func() {
		spill.Close()
		os.Remove(spill.Name())
	}()
	if _, err := writeMerged(f, spill, srcs); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	r, err := OpenSegment(path, s.opts.ForceStream)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return r, nil
}

// Compact merges every sealed segment into one, physically dropping
// all tombstoned postings. Queries and writes keep running; only the
// final swap takes the write lock.
func (s *Store) Compact() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.RLock()
	victims := append([]*storeSegment(nil), s.segs...)
	s.mu.RUnlock()
	return s.compactSet(victims)
}

// compactSet merges victims into one new segment. Tombstones recorded
// before the merge snapshot are reclaimed (their postings are gone
// from the merged file, so their df corrections are retired);
// tombstones that land on a victim while the merge is writing refer
// to documents live in the merged output, so they carry over to the
// new segment. Caller holds maintMu.
func (s *Store) compactSet(victims []*storeSegment) error {
	s.mu.Lock()
	live := make([]*storeSegment, 0, len(victims))
	for _, g := range victims {
		// Only segments still in the store, fully on disk, qualify.
		// (Under maintMu no seal is in flight, so frozen is nil for
		// every present segment; the check keeps the invariant local.)
		if g.frozen == nil && g.r != nil && !g.merging && s.contains(g) {
			live = append(live, g)
		}
	}
	tombs := 0
	for _, g := range live {
		tombs += len(g.tomb)
	}
	if len(live) < 2 && tombs == 0 {
		s.mu.Unlock()
		return nil
	}
	snaps := make([]map[DocID]analysis.Analyzed, len(live))
	srcs := make([]mergeSource, len(live))
	for i, g := range live {
		g.merging = true
		snap := make(map[DocID]analysis.Analyzed, len(g.tomb))
		for d, a := range g.tomb {
			snap[d] = a
		}
		snaps[i] = snap
		srcs[i] = g.mergeSrc(snap)
	}
	seq := s.seq
	s.seq++
	s.mu.Unlock()

	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d%s", seq, segSuffix))
	r, err := s.writeSegmentFile(path, srcs)
	if err != nil {
		s.mu.Lock()
		for _, g := range live {
			g.merging = false
		}
		s.mu.Unlock()
		return err
	}

	s.mu.Lock()
	merged := &storeSegment{r: r, path: path, tomb: map[DocID]analysis.Analyzed{}}
	reclaimed := 0
	for i, g := range live {
		for d, a := range g.tomb {
			if _, snapped := snaps[i][d]; !snapped {
				merged.tomb[d] = a
			}
		}
		for _, a := range snaps[i] {
			s.untrackTomb(a)
			reclaimed++
		}
		s.dropSegmentLocked(g)
	}
	s.segs = append(s.segs, merged)
	s.compacts++
	s.reclaimed += uint64(reclaimed)
	s.updateGauges()
	s.mu.Unlock()

	for _, g := range live {
		g.r.Close()
		os.Remove(g.path)
	}
	mSegCompactions.Inc()
	mSegReclaimed.Add(float64(reclaimed))
	return nil
}

func (s *Store) contains(seg *storeSegment) bool {
	for _, g := range s.segs {
		if g == seg {
			return true
		}
	}
	return false
}

// Maintain runs one maintenance round: seal the memtable if it
// reached FlushDocs, then compact per policy — the smallest half of
// the segments when their count exceeds MaxSegments, or every
// tombstone-carrying segment when tombstones exceed ReclaimFraction
// of the live document count.
func (s *Store) Maintain() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	s.mu.RLock()
	due := s.mem.NumDocs() >= s.opts.FlushDocs
	s.mu.RUnlock()
	if due {
		if err := s.seal(); err != nil {
			return err
		}
	}

	s.mu.RLock()
	var victims []*storeSegment
	if len(s.segs) > s.opts.MaxSegments {
		bySize := append([]*storeSegment(nil), s.segs...)
		sort.Slice(bySize, func(i, j int) bool { return bySize[i].numDocs() < bySize[j].numDocs() })
		n := (len(bySize) + 1) / 2
		if n < 2 {
			n = 2
		}
		victims = bySize[:n]
	} else if liveDocs := s.numDocsLocked(); s.nTombs > 0 && float64(s.nTombs) > s.opts.ReclaimFraction*float64(liveDocs) {
		for _, g := range s.segs {
			if len(g.tomb) > 0 {
				victims = append(victims, g)
			}
		}
	}
	s.mu.RUnlock()
	if len(victims) == 0 {
		return nil
	}
	return s.compactSet(victims)
}

// StartBackground runs Maintain every interval until Close. Failures
// are counted, remembered for Status, and retried next round.
func (s *Store) StartBackground(interval time.Duration) {
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if err := s.Maintain(); err != nil {
					mSegMaintErrs.Inc()
					s.mu.Lock()
					s.lastErr = err
					s.mu.Unlock()
				}
			}
		}
	}()
}

// updateGauges refreshes the shape gauges; caller holds mu.
func (s *Store) updateGauges() {
	var bytes int64
	for _, g := range s.segs {
		bytes += g.size()
	}
	mSegCount.Set(float64(len(s.segs)))
	mSegTombstones.Set(float64(s.nTombs))
	mSegMemDocs.Set(float64(s.mem.NumDocs()))
	mSegDiskBytes.Set(float64(bytes))
}

// SegmentStatus describes one sealed segment.
type SegmentStatus struct {
	Path       string `json:"path"`
	Docs       int    `json:"docs"`
	Tombstones int    `json:"tombstones"`
	Bytes      int64  `json:"bytes"`
}

// StoreStatus is a point-in-time snapshot of the store's shape and
// maintenance history.
type StoreStatus struct {
	MemtableDocs  int             `json:"memtable_docs"`
	LiveDocs      int             `json:"live_docs"`
	Tombstones    int             `json:"tombstones"`
	Segments      []SegmentStatus `json:"segments"`
	Seals         uint64          `json:"seals"`
	Compactions   uint64          `json:"compactions"`
	ReclaimedDocs uint64          `json:"reclaimed_docs"`
	DiskBytes     int64           `json:"disk_bytes"`
	LastError     string          `json:"last_error,omitempty"`
}

// Status reports the store's current shape.
func (s *Store) Status() StoreStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StoreStatus{
		MemtableDocs:  s.mem.NumDocs(),
		LiveDocs:      s.numDocsLocked(),
		Tombstones:    s.nTombs,
		Seals:         s.seals,
		Compactions:   s.compacts,
		ReclaimedDocs: s.reclaimed,
	}
	for _, g := range s.segs {
		st.Segments = append(st.Segments, SegmentStatus{
			Path:       g.path,
			Docs:       g.numDocs(),
			Tombstones: len(g.tomb),
			Bytes:      g.size(),
		})
		st.DiskBytes += g.size()
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// Stats folding: global collection statistics are exact integers —
// memtable counts plus per-segment dictionary counts minus the
// tombstone corrections — so planQuery over a store computes the
// byte-identical weights a monolithic index over the live documents
// would.

func (s *Store) numDocsLocked() int {
	n := s.mem.NumDocs()
	for _, g := range s.segs {
		n += g.numDocs()
	}
	return n - s.nTombs
}

func (s *Store) docFreqLocked(t string) int {
	df := s.mem.DocFreq(t)
	for _, g := range s.segs {
		df += g.docFreq(t)
	}
	return df - s.tombTermDF[t]
}

func (s *Store) entityFreqLocked(e kb.EntityID) int {
	df := s.mem.EntityFreq(e)
	for _, g := range s.segs {
		df += g.entityFreq(e)
	}
	return df - s.tombEntDF[e]
}

// storeStats adapts the folded statistics to CollectionStats; only
// valid while the store lock is held.
type storeStats struct{ s *Store }

func (v storeStats) NumDocs() int                 { return v.s.numDocsLocked() }
func (v storeStats) DocFreq(t string) int         { return v.s.docFreqLocked(t) }
func (v storeStats) EntityFreq(e kb.EntityID) int { return v.s.entityFreqLocked(e) }

// NumDocs returns the number of live documents.
func (s *Store) NumDocs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numDocsLocked()
}

// Has reports whether id is live in the store.
func (s *Store) Has(id DocID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hasLocked(id)
}

// DocFreq returns the number of live documents containing the term.
func (s *Store) DocFreq(t string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docFreqLocked(t)
}

// EntityFreq returns the number of live documents mentioning the
// entity.
func (s *Store) EntityFreq(e kb.EntityID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entityFreqLocked(e)
}

// IRF returns the term's inverse resource frequency over the live
// collection (0 for unseen terms), like Index.IRF.
func (s *Store) IRF(t string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	df := s.docFreqLocked(t)
	if df == 0 {
		return 0
	}
	return irf(s.numDocsLocked(), df)
}

// EIRF returns the entity's inverse resource frequency.
func (s *Store) EIRF(e kb.EntityID) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	df := s.entityFreqLocked(e)
	if df == 0 {
		return 0
	}
	return irf(s.numDocsLocked(), df)
}

// scoreLocked runs one planned evaluation over every component. Each
// component is scored with the shared scorePlanTopK code under the
// segment's tombstone filter; per-component results merge with the
// deterministic comparator. Live document sets are pairwise disjoint
// (a document has exactly one non-tombstoned occurrence), so the
// merge reproduces a monolithic evaluation exactly.
func (s *Store) scoreLocked(plan queryPlan, k int, accept func(DocID) bool) ([]ScoredDoc, topkCounters) {
	parts := make([][]ScoredDoc, 0, len(s.segs)+1)
	var c topkCounters
	out, pc := s.mem.scorePlanTopK(plan, k, accept)
	c.add(pc)
	parts = append(parts, out)
	for _, g := range s.segs {
		view := g.planView(plan)
		out, pc := view.scorePlanTopK(plan, k, g.acceptFilter(accept))
		c.add(pc)
		parts = append(parts, out)
	}
	merged := mergeScored(parts)
	if k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	return merged, c
}

func (s *Store) score(need analysis.Analyzed, alpha float64, st CollectionStats, k int, accept func(DocID) bool) []ScoredDoc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st == nil {
		st = storeStats{s}
	}
	out, c := s.scoreLocked(planQuery(need, alpha, st), k, accept)
	mQueries.Inc()
	mPostings.Add(float64(c.postings))
	mMatches.Add(float64(len(out)))
	mPrunedDocs.Add(float64(c.pruned))
	mBlocksSkipped.Add(float64(c.blocksSkipped))
	return out
}

// Score evaluates Eq. (1) for every live resource matching the need
// (see Index.Score).
func (s *Store) Score(need analysis.Analyzed, alpha float64) []ScoredDoc {
	return s.score(need, alpha, nil, 0, nil)
}

// ScoreTopK is Score bounded to the k best-ranked documents under the
// accept filter (see Searcher.ScoreTopK).
func (s *Store) ScoreTopK(need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc {
	return s.score(need, alpha, nil, k, accept)
}

// ScoreStats is Score with the query planned against an explicit
// collection view (see Index.ScoreStats).
func (s *Store) ScoreStats(need analysis.Analyzed, alpha float64, st CollectionStats) []ScoredDoc {
	return s.score(need, alpha, st, 0, nil)
}

// ScoreStatsTopK is ScoreTopK under an explicit collection view.
func (s *Store) ScoreStatsTopK(need analysis.Analyzed, alpha float64, st CollectionStats, k int, accept func(DocID) bool) []ScoredDoc {
	return s.score(need, alpha, st, k, accept)
}

// WriteTo streams the live collection — memtable plus segments, minus
// tombstones — as one canonical v2 index file, byte-identical to
// WriteTo on a monolithic Index holding the same live documents. It
// holds the read lock for the duration, so concurrent writes wait.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	srcs := make([]mergeSource, 0, len(s.segs)+1)
	srcs = append(srcs, indexMergeSource{ix: s.mem})
	for _, g := range s.segs {
		srcs = append(srcs, g.mergeSrc(g.tomb))
	}
	spill, err := os.CreateTemp(s.dir, "spill-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		spill.Close()
		os.Remove(spill.Name())
	}()
	return writeMerged(w, spill, srcs)
}
