package index

import (
	"bytes"
	"math/rand"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// randomAnalyzed draws one analyzed document over the shard test
// vocabulary, mirroring randomDocs' per-document distribution.
func randomAnalyzed(r *rand.Rand) analysis.Analyzed {
	vocab := shardTestVocab()
	terms := map[string]int{}
	for j := 0; j < 1+r.Intn(10); j++ {
		terms[vocab[r.Intn(len(vocab))]]++
	}
	ents := map[kb.EntityID]analysis.EntityStats{}
	for j := 0; j < r.Intn(4); j++ {
		ds := 0.0
		if r.Intn(4) > 0 {
			ds = r.Float64()
		}
		ents[kb.EntityID(r.Intn(50))] = analysis.EntityStats{Freq: 1 + r.Intn(3), DScore: ds}
	}
	return analysis.Analyzed{Terms: terms, Entities: ents}
}

// corpusState tracks the ground-truth corpus a delta sequence is
// mutating: the analyzed form of every live document.
type corpusState struct {
	live   map[DocID]analysis.Analyzed
	ids    []DocID // sorted insertion order of live ids, for determinism
	nextID DocID
}

func newCorpusState(docs []Doc) *corpusState {
	st := &corpusState{live: make(map[DocID]analysis.Analyzed)}
	for _, d := range docs {
		st.live[d.ID] = d.A
		st.ids = append(st.ids, d.ID)
		if d.ID >= st.nextID {
			st.nextID = d.ID + 1
		}
	}
	return st
}

// randomDelta draws one add/update/delete batch against the current
// state and folds it into the ground truth.
func (st *corpusState) randomDelta(r *rand.Rand) Delta {
	var d Delta
	// Removes: up to 8 distinct live docs.
	for i := 0; i < r.Intn(9) && len(st.ids) > 0; i++ {
		j := r.Intn(len(st.ids))
		id := st.ids[j]
		d.Removes = append(d.Removes, Doc{ID: id, A: st.live[id]})
		delete(st.live, id)
		st.ids = append(st.ids[:j], st.ids[j+1:]...)
	}
	// Updates: up to 12 of the remaining live docs get new content.
	for i := 0; i < r.Intn(13) && len(st.ids) > 0; i++ {
		id := st.ids[r.Intn(len(st.ids))]
		na := randomAnalyzed(r)
		d.Updates = append(d.Updates, DocUpdate{ID: id, Old: st.live[id], New: na})
		st.live[id] = na
	}
	// Adds: up to 15 fresh sparse ids.
	for i := 0; i < r.Intn(16); i++ {
		id := st.nextID + DocID(r.Intn(3))
		st.nextID = id + 1
		a := randomAnalyzed(r)
		d.Adds = append(d.Adds, Doc{ID: id, A: a})
		st.live[id] = a
		st.ids = append(st.ids, id)
	}
	// An update in the same delta as the add/remove of another doc is
	// the common real shape; updating a doc added in this same delta
	// is not (the ingester diffs one installed corpus against one
	// fetched catalog), so randomDelta never produces it.
	return d
}

func (st *corpusState) docs() []Doc {
	out := make([]Doc, 0, len(st.ids))
	for _, id := range st.ids {
		out = append(out, Doc{ID: id, A: st.live[id]})
	}
	return out
}

// TestDeltaVsRebuildDifferential is the delta correctness spine: for
// randomized add/update/delete sequences, an index that absorbed the
// deltas in place must be indistinguishable from a cold rebuild of the
// resulting corpus — bit-identical Score and ScoreTopK rankings for
// every shard count, alpha and k, and a byte-identical serialized
// segment (deletes compact away without a trace).
func TestDeltaVsRebuildDifferential(t *testing.T) {
	shardCounts := []int{1, 2, 3, 7}
	alphas := []float64{0, 0.6, 1}
	ks := []int{1, 10, 0} // 0 = unbounded

	for _, seed := range []int64{1, 2, 3} {
		r := rand.New(rand.NewSource(seed))
		start := randomDocs(seed, 180, 0)

		st := newCorpusState(start)
		mono := flatFromDocs(start)
		shardeds := make([]*Sharded, len(shardCounts))
		for i, n := range shardCounts {
			shardeds[i] = NewSharded(n)
			shardeds[i].AddBatch(start)
		}

		for round := 0; round < 6; round++ {
			d := st.randomDelta(r)
			for _, u := range d.Updates {
				mono.Update(u.ID, u.Old, u.New)
			}
			for _, rm := range d.Removes {
				mono.Remove(rm.ID, rm.A)
			}
			for _, a := range d.Adds {
				mono.Add(a.ID, a.A)
			}
			for _, s := range shardeds {
				s.ApplyDelta(d)
			}

			rebuild := flatFromDocs(st.docs())
			if rebuild.NumDocs() != mono.NumDocs() {
				t.Fatalf("seed %d round %d: monolith has %d docs, rebuild %d",
					seed, round, mono.NumDocs(), rebuild.NumDocs())
			}
			needs := []analysis.Analyzed{randomNeed(r), randomNeed(r), randomNeed(r)}
			for _, need := range needs {
				for _, alpha := range alphas {
					want := rebuild.Score(need, alpha)
					assertScoredBitIdentical(t, "mono delta vs rebuild", want, mono.Score(need, alpha))
					for i, s := range shardeds {
						assertScoredBitIdentical(t, "sharded delta vs rebuild",
							want, s.ScoreWorkers(need, alpha, 1+i%3))
					}
					for _, k := range ks {
						wantK := want
						if k > 0 && len(wantK) > k {
							wantK = wantK[:k]
						}
						assertScoredBitIdentical(t, "mono topk delta vs rebuild",
							wantK, mono.ScoreTopK(need, alpha, k, nil))
						for _, s := range shardeds {
							assertScoredBitIdentical(t, "sharded topk delta vs rebuild",
								wantK, s.ScoreTopK(need, alpha, k, nil))
						}
					}
				}
			}

			// Segment byte-identity: deletes and updates must compact
			// away entirely — the delta-absorbed index serializes to
			// the exact bytes a cold rebuild writes.
			var wantSeg, gotSeg bytes.Buffer
			if _, err := rebuild.WriteTo(&wantSeg); err != nil {
				t.Fatal(err)
			}
			if _, err := mono.WriteTo(&gotSeg); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantSeg.Bytes(), gotSeg.Bytes()) {
				t.Fatalf("seed %d round %d: monolith segment differs from rebuild segment", seed, round)
			}
			for i, s := range shardeds {
				gotSeg.Reset()
				if _, err := s.WriteTo(&gotSeg); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantSeg.Bytes(), gotSeg.Bytes()) {
					t.Fatalf("seed %d round %d: %d-shard segment differs from rebuild segment",
						seed, round, shardCounts[i])
				}
			}
		}
	}
}

// TestRemoveDropsEmptyLists removes every document and requires the
// index to end structurally empty: no term or entity list survives, so
// nothing orphaned can leak into stats, planning, or serialization.
func TestRemoveDropsEmptyLists(t *testing.T) {
	docs := randomDocs(11, 150, 0)
	ix := flatFromDocs(docs)
	s := NewSharded(3)
	s.AddBatch(docs)
	for _, d := range docs {
		ix.Remove(d.ID, d.A)
		s.Remove(d.ID, d.A)
	}
	if ix.NumDocs() != 0 || len(ix.terms) != 0 || len(ix.entities) != 0 {
		t.Fatalf("monolith not empty after removing everything: %d docs, %d terms, %d entities",
			ix.NumDocs(), len(ix.terms), len(ix.entities))
	}
	if s.NumDocs() != 0 {
		t.Fatalf("sharded index reports %d docs after removing everything", s.NumDocs())
	}
	flat := s.Flatten()
	if len(flat.terms) != 0 || len(flat.entities) != 0 {
		t.Fatalf("sharded index kept %d terms, %d entities after removing everything",
			len(flat.terms), len(flat.entities))
	}
	var empty, got bytes.Buffer
	if _, err := New().WriteTo(&empty); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(empty.Bytes(), got.Bytes()) {
		t.Fatal("fully emptied index does not serialize like a fresh one")
	}
}

// TestRemovePanicsOnUnknown pins the programming-error contract:
// removing a document that is not indexed, or with an analyzed form
// naming a dimension the index never saw for it, must panic rather
// than silently corrupt posting lists.
func TestRemovePanicsOnUnknown(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a := analysis.Analyzed{Terms: map[string]int{"swim": 1}}
	ix := New()
	ix.Add(1, a)
	mustPanic("unknown doc", func() { ix.Remove(2, a) })
	mustPanic("absent list", func() {
		ix.Remove(1, analysis.Analyzed{Terms: map[string]int{"notindexed": 1}})
	})
	ix2 := New()
	ix2.Add(1, a)
	ix2.Add(2, analysis.Analyzed{Terms: map[string]int{"pool": 1}})
	mustPanic("posting missing", func() {
		// "pool" exists as a list, but doc 1 is not in it.
		ix2.Remove(1, analysis.Analyzed{Terms: map[string]int{"pool": 1}})
	})
}

// FuzzDeltaApply interleaves adds, updates and removes in a
// fuzz-chosen order and checks that the surviving index is exactly the
// cold rebuild of the surviving documents: bit-identical rankings,
// byte-identical segment, canonical block encoding with sound skip
// bounds on every list.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 200, 9, 9, 9}, "swim pool")
	f.Add(int64(2), []byte{255, 254, 253, 1, 1, 1, 1, 1, 1, 7}, "copper atom")
	f.Add(int64(3), bytes.Repeat([]byte{3, 50, 129}, 80), "php train game")

	f.Fuzz(func(t *testing.T, seed int64, ops []byte, needText string) {
		r := rand.New(rand.NewSource(seed))
		st := newCorpusState(randomDocs(seed, 60, 0))
		ix := flatFromDocs(st.docs())
		s := NewSharded(3)
		s.AddBatch(st.docs())

		for _, op := range ops {
			switch {
			case op < 100: // add
				id := st.nextID + DocID(op%5)
				st.nextID = id + 1
				a := randomAnalyzed(r)
				st.live[id] = a
				st.ids = append(st.ids, id)
				ix.Add(id, a)
				s.Add(id, a)
			case op < 180: // update
				if len(st.ids) == 0 {
					continue
				}
				id := st.ids[int(op)%len(st.ids)]
				na := randomAnalyzed(r)
				ix.Update(id, st.live[id], na)
				s.Update(id, st.live[id], na)
				st.live[id] = na
			default: // remove
				if len(st.ids) == 0 {
					continue
				}
				j := int(op) % len(st.ids)
				id := st.ids[j]
				ix.Remove(id, st.live[id])
				s.Remove(id, st.live[id])
				delete(st.live, id)
				st.ids = append(st.ids[:j], st.ids[j+1:]...)
			}
		}

		rebuild := flatFromDocs(st.docs())
		need := fuzzNeed(needText, uint32(seed))
		for _, alpha := range []float64{0, 0.6, 1} {
			want := rebuild.Score(need, alpha)
			assertScoredBitIdentical(t, "fuzz mono", want, ix.Score(need, alpha))
			assertScoredBitIdentical(t, "fuzz sharded", want, s.Score(need, alpha))
			wantK := want
			if len(wantK) > 5 {
				wantK = wantK[:5]
			}
			assertScoredBitIdentical(t, "fuzz topk", wantK, s.ScoreTopK(need, alpha, 5, nil))
		}

		// Canonical encoding + skip-bound soundness on every touched
		// list (Remove rebuilds lists fully sealed, so canonical() is
		// the list itself whenever the tail is empty).
		for _, l := range ix.terms {
			checkTermBounds(t, l.canonical())
		}
		for _, l := range ix.entities {
			checkEntityBounds(t, l.canonical())
		}

		var wantSeg, gotSeg bytes.Buffer
		if _, err := rebuild.WriteTo(&wantSeg); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.WriteTo(&gotSeg); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSeg.Bytes(), gotSeg.Bytes()) {
			t.Fatal("delta-applied segment differs from rebuild segment")
		}
		// The serialized form must survive the fully-validating reader
		// (recomputed maxima, canonical block-size invariant).
		if _, err := ReadIndex(bytes.NewReader(gotSeg.Bytes())); err != nil {
			t.Fatalf("delta-applied segment rejected by reader: %v", err)
		}
	})
}
