package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// ---------------------------------------------------------------------
// Differential property harness: the top-k determinism contract.
//
// For every (corpus, need, α, k, accept filter, shard count, driver),
// the pruned evaluation must return exactly the exhaustive ranking —
// filtered by accept, truncated to k — bit for bit. The exhaustive
// reference is the monolithic Score path, which the PR 3 harness
// already proves byte-identical across shard counts.
// ---------------------------------------------------------------------

// exhaustiveTopK is the reference ranking: exhaustive Score, filtered
// by accept, truncated to k (k <= 0 keeps everything).
func exhaustiveTopK(ix *Index, need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc {
	full := ix.Score(need, alpha)
	out := full[:0:0]
	for _, sd := range full {
		if accept == nil || accept(sd.Doc) {
			out = append(out, sd)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// scatterTopK simulates the scatter-gather path at the index layer:
// one monolithic index per shard process, each scoring its slice under
// global collection statistics to its local top k, merged and
// truncated by the coordinator.
func scatterTopK(shardIxs []*Index, global CollectionStats, need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc {
	lists := make([][]ScoredDoc, len(shardIxs))
	for i, six := range shardIxs {
		lists[i] = six.ScoreStatsTopK(need, alpha, global, k, accept)
	}
	out := mergeScored(lists)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// splitByRoute partitions docs into n monolithic per-shard indexes the
// way the scatter topology does.
func splitByRoute(docs []Doc, n int) []*Index {
	out := make([]*Index, n)
	for i := range out {
		out[i] = New()
	}
	for _, d := range docs {
		out[ShardRoute(d.ID, n)].Add(d.ID, d.A)
	}
	return out
}

var topkShardCounts = []int{1, 2, 3, 7}

// topkKs covers the grid of ISSUE 8: tiny k, mid k, k near and past
// the matching-set size, and 0 (= unlimited / exhaustive reference).
var topkKs = []int{1, 5, 10, 50, 0}

// TestTopKDifferential is the headline harness: pruned vs exhaustive
// byte-equality across seeds × k × α × shard counts ×
// monolith/Sharded/scatter-merge drivers, with and without an accept
// filter.
func TestTopKDifferential(t *testing.T) {
	alphas := []float64{0, 0.6, 1}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			docs := randomDocs(seed, 400, 0)
			flat := flatFromDocs(docs)
			shardeds := make([]*Sharded, len(topkShardCounts))
			scatters := make([][]*Index, len(topkShardCounts))
			for i, n := range topkShardCounts {
				shardeds[i] = NewSharded(n)
				shardeds[i].AddBatch(docs)
				scatters[i] = splitByRoute(docs, n)
			}
			accepts := []func(DocID) bool{
				nil,
				func(d DocID) bool { return d%3 != 0 },
			}

			r := rand.New(rand.NewSource(seed * 101))
			for q := 0; q < 4; q++ {
				need := randomNeed(r)
				for _, alpha := range alphas {
					for _, k := range topkKs {
						for ai, accept := range accepts {
							want := exhaustiveTopK(flat, need, alpha, k, accept)
							label := fmt.Sprintf("q%d a%g k%d accept%d", q, alpha, k, ai)

							got := flat.ScoreTopK(need, alpha, k, accept)
							assertScoredBitIdentical(t, label+" monolith", want, got)

							for i, n := range topkShardCounts {
								sg := shardeds[i].ScoreTopK(need, alpha, k, accept)
								assertScoredBitIdentical(t, fmt.Sprintf("%s sharded%d", label, n), want, sg)
								sw := shardeds[i].ScoreTopKWorkers(need, alpha, 1, k, accept)
								assertScoredBitIdentical(t, fmt.Sprintf("%s sharded%d seq", label, n), want, sw)
								sc := scatterTopK(scatters[i], flat, need, alpha, k, accept)
								assertScoredBitIdentical(t, fmt.Sprintf("%s scatter%d", label, n), want, sc)
							}
						}
					}
				}
			}
		})
	}
}

// TestTopKDifferentialLargeCorpus runs the harness over a corpus big
// enough for multi-block sealed lists, so block-level refinement and
// block skipping actually fire (asserted via the evaluation counters).
func TestTopKDifferentialLargeCorpus(t *testing.T) {
	docs := randomDocs(11, 3000, 0)
	flat := flatFromDocs(docs)
	sharded := NewSharded(3)
	sharded.AddBatch(docs)

	r := rand.New(rand.NewSource(7))
	var pruned int
	for q := 0; q < 5; q++ {
		need := randomNeed(r)
		for _, alpha := range []float64{0, 0.6, 1} {
			for _, k := range []int{1, 5, 10, 50} {
				want := exhaustiveTopK(flat, need, alpha, k, nil)
				out, c := flat.scorePlanTopK(planQuery(need, alpha, flat), k, nil)
				assertScoredBitIdentical(t, fmt.Sprintf("q%d a%g k%d", q, alpha, k), want, out)
				pruned += c.pruned
				assertScoredBitIdentical(t, fmt.Sprintf("q%d a%g k%d sharded", q, alpha, k),
					want, sharded.ScoreTopK(need, alpha, k, nil))
			}
		}
	}
	if pruned == 0 {
		t.Error("no documents pruned across the large-corpus grid; bounds never fired")
	}
}

// TestTopKBlockSkipping builds the corpus shape skip entries exist
// for: a rare, heavily-weighted term clustered at low doc ids plus a
// ubiquitous low-weight term spanning every block. Once the rare list
// establishes the threshold, the common list's admission closes and
// every block past the live accumulator cluster must be skipped
// without decoding — while the ranking stays byte-identical.
func TestTopKBlockSkipping(t *testing.T) {
	ix := New()
	const n = 3000
	var docs []Doc
	for i := 0; i < n; i++ {
		terms := map[string]int{"zcommon": 1}
		if i < 20 {
			terms["aaarare"] = 5
		}
		a := analysis.Analyzed{Terms: terms}
		ix.Add(DocID(i), a)
		docs = append(docs, Doc{ID: DocID(i), A: a})
	}
	need := analysis.Analyzed{Terms: map[string]int{"aaarare": 1, "zcommon": 1}}

	want := exhaustiveTopK(ix, need, 1, 10, nil)
	out, c := ix.scorePlanTopK(planQuery(need, 1, ix), 10, nil)
	assertScoredBitIdentical(t, "block skipping", want, out)
	if c.blocksSkipped == 0 {
		t.Errorf("no blocks skipped on the crafted corpus (pruned=%d postings=%d)", c.pruned, c.postings)
	}

	sharded := NewSharded(3)
	sharded.AddBatch(docs)
	assertScoredBitIdentical(t, "block skipping sharded", want, sharded.ScoreTopK(need, 1, 10, nil))
}

// TestTopKAdversarial covers the boundary cases the grid can miss.
func TestTopKAdversarial(t *testing.T) {
	t.Run("heap boundary ties", func(t *testing.T) {
		// Every document identical: all scores tie, so pruning must
		// never fire on a tie and truncation must resolve by doc id.
		ix := New()
		var docs []Doc
		for i := 0; i < 300; i++ {
			a := analysis.Analyzed{
				Terms:    map[string]int{"tie": 2, "pool": 1},
				Entities: map[kb.EntityID]analysis.EntityStats{5: {Freq: 1, DScore: 0.5}},
			}
			ix.Add(DocID(i), a)
			docs = append(docs, Doc{ID: DocID(i), A: a})
		}
		need := analysis.Analyzed{
			Terms:    map[string]int{"tie": 1},
			Entities: map[kb.EntityID]analysis.EntityStats{5: {Freq: 1, DScore: 1}},
		}
		sharded := NewSharded(3)
		sharded.AddBatch(docs)
		for _, k := range []int{1, 5, 299, 300, 301} {
			want := exhaustiveTopK(ix, need, 0.6, k, nil)
			assertScoredBitIdentical(t, fmt.Sprintf("ties k%d", k), want, ix.ScoreTopK(need, 0.6, k, nil))
			assertScoredBitIdentical(t, fmt.Sprintf("ties k%d sharded", k), want, sharded.ScoreTopK(need, 0.6, k, nil))
		}
	})

	t.Run("k exceeds corpus", func(t *testing.T) {
		docs := randomDocs(21, 60, 0)
		flat := flatFromDocs(docs)
		r := rand.New(rand.NewSource(22))
		need := randomNeed(r)
		want := exhaustiveTopK(flat, need, 0.6, 0, nil)
		assertScoredBitIdentical(t, "k>docs", want, flat.ScoreTopK(need, 0.6, len(docs)+50, nil))
	})

	t.Run("k zero is exhaustive", func(t *testing.T) {
		docs := randomDocs(23, 120, 0)
		flat := flatFromDocs(docs)
		r := rand.New(rand.NewSource(24))
		for q := 0; q < 3; q++ {
			need := randomNeed(r)
			assertScoredBitIdentical(t, "k0", flat.Score(need, 0.6), flat.ScoreTopK(need, 0.6, 0, nil))
		}
	})

	t.Run("unseen terms only", func(t *testing.T) {
		docs := randomDocs(25, 80, 0)
		flat := flatFromDocs(docs)
		need := analysis.Analyzed{Terms: map[string]int{"neverindexedterm": 1, "alsounseen": 2}}
		if got := flat.ScoreTopK(need, 0.6, 5, nil); len(got) != 0 {
			t.Fatalf("unseen-term need matched %d docs", len(got))
		}
	})

	t.Run("accept rejects everything", func(t *testing.T) {
		docs := randomDocs(26, 80, 0)
		flat := flatFromDocs(docs)
		r := rand.New(rand.NewSource(27))
		need := randomNeed(r)
		if got := flat.ScoreTopK(need, 0.6, 5, func(DocID) bool { return false }); len(got) != 0 {
			t.Fatalf("all-rejecting accept matched %d docs", len(got))
		}
	})
}

// TestTopKDeterministicRepetition repeats one pruned configuration 50
// times on every driver; any run differing from the first is a
// determinism break.
func TestTopKDeterministicRepetition(t *testing.T) {
	docs := randomDocs(31, 500, 0)
	flat := flatFromDocs(docs)
	sharded := NewSharded(7)
	sharded.AddBatch(docs)
	scatterIxs := splitByRoute(docs, 3)
	r := rand.New(rand.NewSource(32))
	need := randomNeed(r)
	accept := func(d DocID) bool { return d%2 == 0 }

	base := flat.ScoreTopK(need, 0.6, 10, accept)
	assertScoredBitIdentical(t, "reference", exhaustiveTopK(flat, need, 0.6, 10, accept), base)
	for i := 0; i < 50; i++ {
		assertScoredBitIdentical(t, fmt.Sprintf("rep%d monolith", i), base, flat.ScoreTopK(need, 0.6, 10, accept))
		assertScoredBitIdentical(t, fmt.Sprintf("rep%d sharded", i), base, sharded.ScoreTopK(need, 0.6, 10, accept))
		assertScoredBitIdentical(t, fmt.Sprintf("rep%d scatter", i), base, scatterTopK(scatterIxs, flat, need, 0.6, 10, accept))
	}
}

// TestTopKConcurrent runs pruned queries from many goroutines against
// a shared index (monolithic and sharded), for the race detector.
func TestTopKConcurrent(t *testing.T) {
	docs := randomDocs(41, 400, 0)
	flat := flatFromDocs(docs)
	sharded := NewSharded(4)
	sharded.AddBatch(docs)
	r := rand.New(rand.NewSource(42))
	need := randomNeed(r)
	want := flat.ScoreTopK(need, 0.6, 10, nil)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				assertScoredBitIdentical(t, "concurrent monolith", want, flat.ScoreTopK(need, 0.6, 10, nil))
				assertScoredBitIdentical(t, "concurrent sharded", want, sharded.ScoreTopK(need, 0.6, 10, nil))
			}
		}()
	}
	wg.Wait()
}

// TestShardedLivePoolSingleTerm is the regression test for the worker
// pool sizing fix: a single rare term matching one shard must size its
// pool off the live work items, not the total shard count, and still
// return the exact sequential ranking.
func TestShardedLivePoolSingleTerm(t *testing.T) {
	s := NewSharded(16)
	flat := New()
	// One document carries a unique term; the rest share the vocab.
	docs := randomDocs(51, 200, 0)
	rare := Doc{ID: 100_003, A: analysis.Analyzed{Terms: map[string]int{"rareterm": 2}}}
	docs = append(docs, rare)
	s.AddBatch(docs)
	for _, d := range docs {
		flat.Add(d.ID, d.A)
	}

	need := analysis.Analyzed{Terms: map[string]int{"rareterm": 1}}
	plan := planQuery(need, 1, s)
	live := s.liveShards(plan)
	if len(live) != 1 {
		t.Fatalf("single-term plan reports %d live shards, want 1", len(live))
	}
	want := flat.Score(need, 1)
	if len(want) != 1 || want[0].Doc != rare.ID {
		t.Fatalf("reference ranking wrong: %+v", want)
	}
	assertScoredBitIdentical(t, "live pool", want, s.Score(need, 1))
	assertScoredBitIdentical(t, "live pool workers", want, s.ScoreWorkers(need, 1, 8))
	assertScoredBitIdentical(t, "live pool topk", want, s.ScoreTopK(need, 1, 5, nil))

	// A need matching nothing must report no live shards and rank empty.
	none := analysis.Analyzed{Terms: map[string]int{"neverindexedterm": 1}}
	if got := s.Score(none, 1); len(got) != 0 {
		t.Fatalf("unseen term matched %d docs", len(got))
	}
	if live := s.liveShards(planQuery(none, 1, s)); len(live) != 0 {
		t.Fatalf("unseen term reports %d live shards", len(live))
	}
}

// BenchmarkScoreTopK measures pruned vs exhaustive scoring over a
// k × corpus-size grid.
func BenchmarkScoreTopK(b *testing.B) {
	for _, nDocs := range []int{1000, 10000} {
		docs := randomDocs(61, nDocs, 0)
		flat := flatFromDocs(docs)
		r := rand.New(rand.NewSource(62))
		need := randomNeed(r)
		for _, k := range []int{0, 10, 100} {
			name := fmt.Sprintf("docs%d/k%d", nDocs, k)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					flat.ScoreTopK(need, 0.6, k, nil)
				}
			})
		}
		b.Run(fmt.Sprintf("docs%d/exhaustive", nDocs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				flat.Score(need, 0.6)
			}
		})
	}
}
