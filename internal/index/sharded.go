package index

import (
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
	"expertfind/internal/telemetry"
)

// Shard-path metrics: where each query's matching work lands and how
// long every shard takes, so a skewed shard shows up as a fat
// histogram rather than an invisible straggler.
var (
	mShardGauge = telemetry.Default().Gauge(
		"expertfind_index_shards",
		"Shard count of the most recently constructed sharded index.")
	mShardScoreSeconds = telemetry.Default().HistogramVec(
		"expertfind_index_shard_score_seconds",
		"Per-shard wall time of one Score evaluation.", nil, "shard")
)

// Doc pairs a resource id with its analyzed form: the unit of bulk
// indexing.
type Doc struct {
	ID DocID
	A  analysis.Analyzed
}

// shard is one lock-guarded partition of the document space. The
// inner Index stays lock-free; all synchronization lives here.
type shard struct {
	mu sync.RWMutex
	ix *Index
}

// Sharded is an inverted index split into document-hash shards behind
// the same API as Index. Building routes each document to exactly one
// shard; scoring plans the query once against global collection
// statistics, evaluates every shard concurrently on a bounded worker
// pool, and merges the per-shard rankings with the deterministic
// (descending score, ascending DocID) tie-break. Results are
// byte-identical to a monolithic Index over the same documents, for
// any shard count.
//
// Unlike Index, Sharded is safe for concurrent use: Add/Merge take a
// per-shard write lock, queries take read locks. A Score overlapping
// a mutation sees some consistent-per-shard interleaving of the two.
// ApplyDelta is stronger: it holds the collection-wide write lock, so
// queries running through the whole-collection entry points (Score,
// ScoreTopK and their variants, Flatten/WriteTo) observe either the
// entire delta or none of it — never a torn mix of plan statistics
// and postings.
type Sharded struct {
	// global orders whole-collection operations against deltas:
	// ApplyDelta write-holds it, the Score entry points and
	// Flatten/WriteTo read-hold it for their full duration, and the
	// incremental mutators (Add/AddBatch/Merge) read-hold it so they
	// keep running concurrently with each other as before. Lock order
	// is always global before shard.
	global  sync.RWMutex
	shards  []*shard
	workers int
}

// NewSharded returns an empty index with n document-hash shards;
// n <= 0 selects GOMAXPROCS. The scoring worker pool is bounded by
// min(n, GOMAXPROCS at construction).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{ix: New()}
	}
	s.workers = runtime.GOMAXPROCS(0)
	if s.workers > n {
		s.workers = n
	}
	mShardGauge.Set(float64(n))
	return s
}

// NewShardedFromIndex splits an existing monolithic index (e.g. one
// loaded from a binary segment) into n document-hash shards.
func NewShardedFromIndex(ix *Index, n int) *Sharded {
	s := NewSharded(n)
	for d := range ix.docs {
		s.shards[s.shardFor(d)].ix.docs[d] = struct{}{}
	}
	for t, l := range ix.terms {
		t := t
		l.forEach(func(p termPosting) {
			s.shards[s.shardFor(p.doc)].ix.termList(t).add(p)
		})
	}
	for e, l := range ix.entities {
		e := e
		l.forEach(func(p entityPosting) {
			s.shards[s.shardFor(p.doc)].ix.entityList(e).add(p)
		})
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardRoute routes a document to one of n shards. The mix function
// (splitmix64 finalizer) decorrelates the route from sequential id
// patterns; it is a pure function of (id, n), so the layout is stable
// across processes — the scatter-gather serving layer relies on this
// to split one corpus across shard processes and know, without
// coordination, which process owns any document.
func ShardRoute(d DocID, n int) int {
	h := uint64(uint32(d))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(n))
}

// shardFor routes a document to its in-process shard via ShardRoute.
func (s *Sharded) shardFor(d DocID) int {
	return ShardRoute(d, len(s.shards))
}

// Add indexes an analyzed resource under id, locking only the one
// shard the document routes to. Adding the same id twice panics, as
// with Index.Add.
func (s *Sharded) Add(id DocID, a analysis.Analyzed) {
	s.global.RLock()
	defer s.global.RUnlock()
	sh := s.shards[s.shardFor(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ix.Add(id, a)
}

// Remove deletes a previously indexed resource (see Index.Remove),
// locking only the one shard the document routes to.
func (s *Sharded) Remove(id DocID, a analysis.Analyzed) {
	s.global.RLock()
	defer s.global.RUnlock()
	sh := s.shards[s.shardFor(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ix.Remove(id, a)
}

// Update replaces the indexed form of a document (see Index.Update),
// locking only the one shard the document routes to.
func (s *Sharded) Update(id DocID, old, new analysis.Analyzed) {
	s.global.RLock()
	defer s.global.RUnlock()
	sh := s.shards[s.shardFor(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ix.Update(id, old, new)
}

// DocUpdate pairs a document with its previously indexed analyzed
// form and its replacement: the unit of in-place change in a Delta.
type DocUpdate struct {
	ID       DocID
	Old, New analysis.Analyzed
}

// Delta is one atomic batch of index mutations. Removes carry the
// analyzed form the document was added under, exactly like
// Index.Remove.
type Delta struct {
	Adds    []Doc
	Updates []DocUpdate
	Removes []Doc
}

// Empty reports whether the delta carries no mutations.
func (d Delta) Empty() bool {
	return len(d.Adds) == 0 && len(d.Updates) == 0 && len(d.Removes) == 0
}

// ApplyDelta applies removes, updates and adds as one atomic step
// under the collection-wide write lock: a concurrent query through the
// Score entry points ranks against either the pre-delta or the
// post-delta collection, never a mix. Per-shard locks are still taken
// (the fine-grained stats readers do not hold the global lock).
func (s *Sharded) ApplyDelta(d Delta) {
	s.global.Lock()
	defer s.global.Unlock()
	for _, r := range d.Removes {
		sh := s.shards[s.shardFor(r.ID)]
		sh.mu.Lock()
		sh.ix.Remove(r.ID, r.A)
		sh.mu.Unlock()
	}
	for _, u := range d.Updates {
		sh := s.shards[s.shardFor(u.ID)]
		sh.mu.Lock()
		sh.ix.Update(u.ID, u.Old, u.New)
		sh.mu.Unlock()
	}
	for _, a := range d.Adds {
		sh := s.shards[s.shardFor(a.ID)]
		sh.mu.Lock()
		sh.ix.Add(a.ID, a.A)
		sh.mu.Unlock()
	}
}

// AddBatch bulk-indexes docs with one goroutine per shard: documents
// are bucketed by route first, then every shard is populated by a
// single writer, so the build parallelizes without lock contention.
func (s *Sharded) AddBatch(docs []Doc) {
	s.global.RLock()
	defer s.global.RUnlock()
	buckets := make([][]Doc, len(s.shards))
	for _, d := range docs {
		i := s.shardFor(d.ID)
		buckets[i] = append(buckets[i], d)
	}
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if len(buckets[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, docs []Doc) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for _, d := range docs {
				sh.ix.Add(d.ID, d.A)
			}
		}(sh, buckets[i])
	}
	wg.Wait()
}

// Merge folds another sharded index into this one. The document sets
// must be disjoint (overlaps panic, as with Index.Merge). Equal shard
// counts merge shard-pairwise — the hash routing is identical — while
// differing counts re-route every posting individually.
func (s *Sharded) Merge(other *Sharded) {
	flat := (*Index)(nil)
	if len(other.shards) != len(s.shards) {
		flat = other.Flatten()
	}
	s.global.RLock()
	defer s.global.RUnlock()
	if flat != nil {
		s.mergeIndex(flat)
		return
	}
	for i, sh := range s.shards {
		osh := other.shards[i]
		sh.mu.Lock()
		osh.mu.RLock()
		sh.ix.Merge(osh.ix)
		osh.mu.RUnlock()
		sh.mu.Unlock()
	}
}

// MergeIndex folds a monolithic index into this one, routing each
// document to its shard. Document sets must be disjoint.
func (s *Sharded) MergeIndex(other *Index) {
	s.global.RLock()
	defer s.global.RUnlock()
	s.mergeIndex(other)
}

// mergeIndex is MergeIndex without the global lock; the caller holds
// it.
func (s *Sharded) mergeIndex(other *Index) {
	routed := NewShardedFromIndex(other, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.ix.Merge(routed.shards[i].ix)
		sh.mu.Unlock()
	}
}

// Flatten merges every shard into one monolithic Index (a copy; the
// shards are not aliased). It holds the collection-wide read lock, so
// the copy is a consistent snapshot with respect to ApplyDelta.
func (s *Sharded) Flatten() *Index {
	s.global.RLock()
	defer s.global.RUnlock()
	out := New()
	for _, sh := range s.shards {
		sh.mu.RLock()
		out.Merge(sh.ix)
		sh.mu.RUnlock()
	}
	return out
}

// WriteTo serializes the index as one binary segment, identical to
// the segment the equivalent monolithic Index would write (the codec
// sorts everything, so shard layout leaves no trace).
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	return s.Flatten().WriteTo(w)
}

// NumDocs returns the number of indexed resources across all shards.
func (s *Sharded) NumDocs() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.ix.docs)
		sh.mu.RUnlock()
	}
	return n
}

// Has reports whether id is indexed.
func (s *Sharded) Has(id DocID) bool {
	sh := s.shards[s.shardFor(id)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.ix.Has(id)
}

// DocFreq returns the number of resources containing the term,
// summed across shards.
func (s *Sharded) DocFreq(term string) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.ix.DocFreq(term)
		sh.mu.RUnlock()
	}
	return n
}

// EntityFreq returns the number of resources mentioning the entity,
// summed across shards.
func (s *Sharded) EntityFreq(e kb.EntityID) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.ix.EntityFreq(e)
		sh.mu.RUnlock()
	}
	return n
}

// IRF returns the inverse resource frequency of a term over the whole
// collection (all shards), matching Index.IRF on the same documents.
func (s *Sharded) IRF(term string) float64 {
	df := s.DocFreq(term)
	if df == 0 {
		return 0
	}
	return irf(s.NumDocs(), df)
}

// EIRF returns the inverse resource frequency of an entity over the
// whole collection.
func (s *Sharded) EIRF(e kb.EntityID) float64 {
	df := s.EntityFreq(e)
	if df == 0 {
		return 0
	}
	return irf(s.NumDocs(), df)
}

// Score evaluates Eq. (1) like Index.Score, scoring shards
// concurrently on the index's worker pool. Output is byte-identical
// to the monolithic index over the same documents.
func (s *Sharded) Score(need analysis.Analyzed, alpha float64) []ScoredDoc {
	return s.ScoreWorkers(need, alpha, 0)
}

// ScoreStats is Index.ScoreStats for the sharded index (pool-default
// worker bound), satisfying StatsSearcher.
func (s *Sharded) ScoreStats(need analysis.Analyzed, alpha float64, st CollectionStats) []ScoredDoc {
	return s.ScoreStatsWorkers(need, alpha, st, 0)
}

// ScoreWorkers is Score with an explicit worker bound: 0 selects the
// pool default (min(shards, GOMAXPROCS at construction)), 1 scores
// shards sequentially, higher values allow up to that many concurrent
// shard scorers (never more than one per shard).
func (s *Sharded) ScoreWorkers(need analysis.Analyzed, alpha float64, workers int) []ScoredDoc {
	return s.ScoreStatsWorkers(need, alpha, s, workers)
}

// ScoreStatsWorkers is ScoreWorkers with the query planned against an
// explicit collection view (see Index.ScoreStats): the scatter layer
// plans against cross-process global statistics while each shard
// process scores only its own slice.
func (s *Sharded) ScoreStatsWorkers(need analysis.Analyzed, alpha float64, st CollectionStats, workers int) []ScoredDoc {
	s.global.RLock()
	defer s.global.RUnlock()
	plan := planQuery(need, alpha, st)
	live := s.liveShards(plan)

	partials := make([][]ScoredDoc, len(live))
	counts := make([]int, len(live))
	s.forEachLiveShard(live, workers, func(pos, i int) {
		partials[pos], counts[pos] = s.scoreShard(i, plan)
	})

	out := mergeScored(partials)
	postings := 0
	for _, c := range counts {
		postings += c
	}
	mQueries.Inc()
	mPostings.Add(float64(postings))
	mMatches.Add(float64(len(out)))
	return out
}

// ScoreTopK is Index.ScoreTopK for the sharded index: each live shard
// runs its own pruned evaluation to a local top k, and the per-shard
// prefixes k-way merge under scoredLess into the global prefix — a
// document in the global top k is necessarily in its own shard's top
// k, so the merged-and-truncated ranking is byte-identical to the
// monolithic pruned (and hence exhaustive) ranking.
func (s *Sharded) ScoreTopK(need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc {
	return s.ScoreStatsTopKWorkers(need, alpha, s, 0, k, accept)
}

// ScoreTopKWorkers is ScoreTopK with the ScoreWorkers worker bound.
func (s *Sharded) ScoreTopKWorkers(need analysis.Analyzed, alpha float64, workers, k int, accept func(DocID) bool) []ScoredDoc {
	return s.ScoreStatsTopKWorkers(need, alpha, s, workers, k, accept)
}

// ScoreStatsTopK is ScoreTopK with the query planned against an
// explicit collection view, satisfying StatsSearcher.
func (s *Sharded) ScoreStatsTopK(need analysis.Analyzed, alpha float64, st CollectionStats, k int, accept func(DocID) bool) []ScoredDoc {
	return s.ScoreStatsTopKWorkers(need, alpha, st, 0, k, accept)
}

// ScoreStatsTopKWorkers combines the explicit collection view, the
// worker bound, and the top-k limit.
func (s *Sharded) ScoreStatsTopKWorkers(need analysis.Analyzed, alpha float64, st CollectionStats, workers, k int, accept func(DocID) bool) []ScoredDoc {
	s.global.RLock()
	defer s.global.RUnlock()
	plan := planQuery(need, alpha, st)
	live := s.liveShards(plan)

	partials := make([][]ScoredDoc, len(live))
	counters := make([]topkCounters, len(live))
	s.forEachLiveShard(live, workers, func(pos, i int) {
		t0 := time.Now()
		sh := s.shards[i]
		sh.mu.RLock()
		partials[pos], counters[pos] = sh.ix.scorePlanTopK(plan, k, accept)
		sh.mu.RUnlock()
		mShardScoreSeconds.With(strconv.Itoa(i)).ObserveSince(t0)
	})

	out := mergeScored(partials)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	var c topkCounters
	for _, ci := range counters {
		c.add(ci)
	}
	mQueries.Inc()
	mPostings.Add(float64(c.postings))
	mMatches.Add(float64(len(out)))
	mPrunedDocs.Add(float64(c.pruned))
	mBlocksSkipped.Add(float64(c.blocksSkipped))
	return out
}

// liveShards returns the shards holding at least one posting of some
// planned dimension — the actual work items of this query. Sizing the
// worker pool off this list (rather than the total shard count) keeps
// a narrow query — a single rare term, say — from spinning up a full
// pool of workers that immediately find nothing to do.
func (s *Sharded) liveShards(plan queryPlan) []int {
	live := make([]int, 0, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		hit := false
		for _, pt := range plan.terms {
			if l := sh.ix.terms[pt.term]; l != nil && l.count > 0 {
				hit = true
				break
			}
		}
		if !hit {
			for _, pe := range plan.entities {
				if l := sh.ix.entities[pe.e]; l != nil && l.count > 0 {
					hit = true
					break
				}
			}
		}
		sh.mu.RUnlock()
		if hit {
			live = append(live, i)
		}
	}
	return live
}

// forEachLiveShard runs fn(pos, shard) for every live shard on at most
// workers concurrent goroutines; workers <= 0 selects the pool default
// and the bound never exceeds the number of live shards.
func (s *Sharded) forEachLiveShard(live []int, workers int, fn func(pos, shard int)) {
	if workers <= 0 {
		workers = s.workers
	}
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 {
		for pos, i := range live {
			fn(pos, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1) - 1)
				if pos >= len(live) {
					return
				}
				fn(pos, live[pos])
			}
		}()
	}
	wg.Wait()
}

func (s *Sharded) scoreShard(i int, plan queryPlan) ([]ScoredDoc, int) {
	t0 := time.Now()
	sh := s.shards[i]
	sh.mu.RLock()
	out, postings := sh.ix.scorePlan(plan)
	sh.mu.RUnlock()
	mShardScoreSeconds.With(strconv.Itoa(i)).ObserveSince(t0)
	return out, postings
}

// mergeScored k-way merges per-shard rankings that are each already
// sorted by scoredLess. Shards hold disjoint documents, so the
// comparator is a total order and the merge is the unique global
// ranking — no re-sort, no nondeterminism.
func mergeScored(lists [][]ScoredDoc) []ScoredDoc {
	nonEmpty := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	out := make([]ScoredDoc, 0, total)
	heads := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, l := range nonEmpty {
			if heads[i] >= len(l) {
				continue
			}
			if best == -1 || scoredLess(l[heads[i]], nonEmpty[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, nonEmpty[best][heads[best]])
		heads[best]++
	}
	return out
}
