package index

import (
	"math"
	"sort"

	"expertfind/internal/analysis"
	"expertfind/internal/telemetry"
)

// MaxScore-style top-k pruning (term-at-a-time). The accumulator walks
// the planned lists in plan order — exactly the order exhaustive
// scoring uses, so every surviving document's float64 addition chain is
// identical to the exhaustive one — and maintains θ, the k-th largest
// current partial score. A document whose partial score plus the sum
// of the remaining lists' upper bounds provably stays below θ can never
// enter the top k and is dropped; a document first seen when the
// remaining bound itself is below θ is never admitted. Both proofs are
// taken on bounds inflated by boundSlack, so float non-associativity
// (the suffix sum, and the (ef·w)·we vs (ef·we)·w product grouping)
// can only make pruning more conservative, never wrong: the pruned
// ranking is byte-identical to the exhaustive one truncated to k.
//
// Block skipping rides on the same proof. Once the remaining bound
// after the current list is below θ, no new document can be admitted
// from any later list, so a block of the current list whose own bound
// is below θ is update-only; if no live accumulator doc falls in its
// doc-id range it is skipped without decoding.

// Pruning metrics: how much work the top-k path avoided.
var (
	mPrunedDocs = telemetry.Default().Counter(
		"expertfind_index_pruned_docs_total",
		"Accumulated candidates dropped by a MaxScore bound proof during top-k scoring.")
	mBlocksSkipped = telemetry.Default().Counter(
		"expertfind_index_blocks_skipped_total",
		"Posting blocks skipped without decoding during top-k scoring.")
)

// boundSlack inflates every upper bound before it is compared against
// the θ threshold. Upper bounds are sums and products of non-negative
// float64s evaluated in a different association order than the scores
// they bound; the relative error of either is far below 1e-12 for any
// realistic list count, so a 1e-9 inflation makes the strict-inequality
// proofs sound while costing essentially no pruning power.
const boundSlack = 1 + 1e-9

// topkCounters aggregates one pruned evaluation's work accounting.
type topkCounters struct {
	postings      int // postings actually decoded and accumulated
	pruned        int // accumulator entries dropped by bound proof
	blocksSkipped int // sealed blocks skipped without decoding
}

func (c *topkCounters) add(o topkCounters) {
	c.postings += o.postings
	c.pruned += o.pruned
	c.blocksSkipped += o.blocksSkipped
}

// topkAcc is the accumulator state of one pruned evaluation.
type topkAcc struct {
	k      int
	accept func(DocID) bool
	scores map[DocID]float64
	// dead holds documents dropped by a bound proof, so a later list
	// can never resurrect one with a partial (wrong) score.
	dead    map[DocID]struct{}
	theta   float64   // k-th largest current partial; -Inf until k exist
	scratch []float64 // size-k min-heap reused across settle calls
	topkCounters
}

func newTopkAcc(k int, accept func(DocID) bool) *topkAcc {
	a := &topkAcc{
		k:      k,
		accept: accept,
		scores: make(map[DocID]float64),
		dead:   make(map[DocID]struct{}),
		theta:  math.Inf(-1),
	}
	if k > 0 {
		a.scratch = make([]float64, 0, k)
	}
	return a
}

// admits reports whether a document bounded by bound could still reach
// the current threshold. Strict comparison: ties are never pruned.
func (a *topkAcc) admits(bound float64) bool {
	return !(bound*boundSlack < a.theta)
}

// visit accumulates one posting's contribution c for doc. admit
// permits starting a new accumulator; updates always apply.
func (a *topkAcc) visit(doc DocID, c float64, admit bool) {
	a.postings++
	if v, ok := a.scores[doc]; ok {
		a.scores[doc] = v + c
		return
	}
	if !admit {
		return
	}
	if _, dd := a.dead[doc]; dd {
		return
	}
	if a.accept != nil && !a.accept(doc) {
		return
	}
	a.scores[doc] = c
}

// settle, called after each list, refreshes θ from the live partials
// and drops every accumulator that provably cannot reach it given the
// remaining bound remNext.
func (a *topkAcc) settle(remNext float64) {
	if a.k <= 0 {
		return
	}
	if len(a.scores) >= a.k {
		a.theta = a.kthLargest()
	}
	if math.IsInf(a.theta, -1) || a.theta <= 0 {
		return
	}
	for d, v := range a.scores {
		if (v+remNext)*boundSlack < a.theta {
			delete(a.scores, d)
			a.dead[d] = struct{}{}
			a.pruned++
		}
	}
}

// kthLargest selects the k-th largest live partial with a size-k
// min-heap; requires len(scores) >= k. The result is a pure function
// of the multiset of values, so map iteration order cannot leak into
// the threshold.
func (a *topkAcc) kthLargest() float64 {
	h := a.scratch[:0]
	for _, v := range a.scores {
		if len(h) < a.k {
			h = append(h, v)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if h[p] <= h[i] {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
			continue
		}
		if v > h[0] {
			h[0] = v
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				small := i
				if l < len(h) && h[l] < h[small] {
					small = l
				}
				if r < len(h) && h[r] < h[small] {
					small = r
				}
				if small == i {
					break
				}
				h[i], h[small] = h[small], h[i]
				i = small
			}
		}
	}
	a.scratch = h
	return h[0]
}

// liveDocsSorted snapshots the live accumulator doc ids in ascending
// order, for deciding whether an update-only block intersects any
// accumulator. Taken per list: documents admitted later in the same
// list always carry smaller doc ids than any block still ahead, so the
// snapshot cannot miss a doc a later block must update.
func (a *topkAcc) liveDocsSorted() []DocID {
	out := make([]DocID, 0, len(a.scores))
	for d := range a.scores {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// docsInRange reports whether the sorted snapshot holds a doc in
// (lo, hi]; lo < 0 means unbounded below.
func docsInRange(snap []DocID, lo int64, hi DocID) bool {
	i := sort.Search(len(snap), func(i int) bool { return int64(snap[i]) > lo })
	return i < len(snap) && snap[i] <= hi
}

// walkTermList feeds one planned term list into the accumulator.
// remNext is the summed upper bound of every list after this one.
func (a *topkAcc) walkTermList(l *termList, w, remNext float64) {
	listAdmit := a.admits(l.maxW*w + remNext)
	// Block-level admission refinement is sound only once admission is
	// closed for every later list (remNext below θ): a document turned
	// away by a block bound here can then never be admitted later with
	// a partial chain.
	refine := listAdmit && !a.admits(remNext)
	var snap []DocID
	snapped := false
	base := DocID(0)
	lo := int64(-1)
	for _, bm := range l.blocks {
		admit := listAdmit
		if !listAdmit || (refine && !a.admits(bm.maxW*w+remNext)) {
			admit = false
			if !snapped {
				snap, snapped = a.liveDocsSorted(), true
			}
			if !docsInRange(snap, lo, bm.maxDoc) {
				a.blocksSkipped++
				base = bm.maxDoc
				lo = int64(bm.maxDoc)
				continue
			}
		}
		prev, pos := base, bm.off
		for j := 0; j < bm.n; j++ {
			delta, n := uvarintAt(l.data, pos)
			pos += n
			tf, n := uvarintAt(l.data, pos)
			pos += n
			prev += DocID(delta)
			a.visit(prev, float64(tf)*w, admit)
		}
		base = bm.maxDoc
		lo = int64(bm.maxDoc)
	}
	for _, p := range l.tail {
		a.visit(p.doc, float64(p.tf)*w, listAdmit)
	}
}

// walkEntityList is walkTermList for an entity list. The contribution
// is computed exactly as the exhaustive path does — float64(ef)·w·we,
// left associated — so surviving chains stay byte-identical.
func (a *topkAcc) walkEntityList(l *entityList, w, remNext float64) {
	listAdmit := a.admits(l.maxW*w + remNext)
	refine := listAdmit && !a.admits(remNext)
	var snap []DocID
	snapped := false
	base := DocID(0)
	lo := int64(-1)
	for _, bm := range l.blocks {
		admit := listAdmit
		if !listAdmit || (refine && !a.admits(bm.maxW*w+remNext)) {
			admit = false
			if !snapped {
				snap, snapped = a.liveDocsSorted(), true
			}
			if !docsInRange(snap, lo, bm.maxDoc) {
				a.blocksSkipped++
				base = bm.maxDoc
				lo = int64(bm.maxDoc)
				continue
			}
		}
		prev, pos := base, bm.off
		for j := 0; j < bm.n; j++ {
			delta, n := uvarintAt(l.data, pos)
			pos += n
			ef, n := uvarintAt(l.data, pos)
			pos += n
			dScore := float64FromBytes(l.data[pos:])
			pos += 8
			prev += DocID(delta)
			we := 0.0
			if dScore > 0 {
				we = 1 + dScore
			}
			a.visit(prev, float64(ef)*w*we, admit)
		}
		base = bm.maxDoc
		lo = int64(bm.maxDoc)
	}
	for _, p := range l.tailE {
		we := 0.0
		if p.dScore > 0 {
			we = 1 + p.dScore
		}
		a.visit(p.doc, float64(p.ef)*w*we, listAdmit)
	}
}

// scorePlanTopK is scorePlan with MaxScore pruning: positive matches
// under the accept filter, ordered by scoredLess, truncated to k.
// k <= 0 disables both the bound and the pruning (θ never activates),
// reducing to an exhaustive accept-filtered evaluation.
func (ix *Index) scorePlanTopK(plan queryPlan, k int, accept func(DocID) bool) ([]ScoredDoc, topkCounters) {
	type boundedTerm struct {
		l *termList
		w float64
	}
	type boundedEnt struct {
		l *entityList
		w float64
	}
	terms := make([]boundedTerm, 0, len(plan.terms))
	ents := make([]boundedEnt, 0, len(plan.entities))
	for _, pt := range plan.terms {
		if l := ix.terms[pt.term]; l != nil && l.count > 0 {
			terms = append(terms, boundedTerm{l: l, w: pt.w})
		}
	}
	for _, pe := range plan.entities {
		if l := ix.entities[pe.e]; l != nil && l.count > 0 {
			ents = append(ents, boundedEnt{l: l, w: pe.w})
		}
	}

	// suffix[i] bounds the total contribution of lists i.. (terms
	// first, then entities — plan order).
	nLists := len(terms) + len(ents)
	suffix := make([]float64, nLists+1)
	for i := len(ents) - 1; i >= 0; i-- {
		j := len(terms) + i
		suffix[j] = suffix[j+1] + ents[i].l.maxW*ents[i].w
	}
	for i := len(terms) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + terms[i].l.maxW*terms[i].w
	}

	a := newTopkAcc(k, accept)
	for i, bt := range terms {
		a.walkTermList(bt.l, bt.w, suffix[i+1])
		a.settle(suffix[i+1])
	}
	for i, be := range ents {
		j := len(terms) + i
		a.walkEntityList(be.l, be.w, suffix[j+1])
		a.settle(suffix[j+1])
	}

	out := make([]ScoredDoc, 0, len(a.scores))
	for d, s := range a.scores {
		if s > 0 {
			out = append(out, ScoredDoc{Doc: d, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return scoredLess(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, a.topkCounters
}

// uvarintAt decodes a uvarint at data[pos:].
func uvarintAt(data []byte, pos int) (uint64, int) {
	// Fast path: single-byte varints dominate delta streams.
	if b := data[pos]; b < 0x80 {
		return uint64(b), 1
	}
	v, n := uvarintSlow(data[pos:])
	return v, n
}

func uvarintSlow(b []byte) (uint64, int) {
	var v uint64
	for i, s := 0, uint(0); i < len(b); i, s = i+1, s+7 {
		c := b[i]
		if c < 0x80 {
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
	}
	return 0, 0
}

// ScoreTopK evaluates Score bounded to the k best-ranked documents
// (see Searcher.ScoreTopK for the contract).
func (ix *Index) ScoreTopK(need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc {
	return ix.ScoreStatsTopK(need, alpha, ix, k, accept)
}

// ScoreStatsTopK is ScoreTopK with the query planned against an
// explicit collection view (see ScoreStats).
func (ix *Index) ScoreStatsTopK(need analysis.Analyzed, alpha float64, st CollectionStats, k int, accept func(DocID) bool) []ScoredDoc {
	out, c := ix.scorePlanTopK(planQuery(need, alpha, st), k, accept)
	mQueries.Inc()
	mPostings.Add(float64(c.postings))
	mMatches.Add(float64(len(out)))
	mPrunedDocs.Add(float64(c.pruned))
	mBlocksSkipped.Add(float64(c.blocksSkipped))
	return out
}
