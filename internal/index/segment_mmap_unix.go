//go:build unix

package index

import (
	"os"
	"syscall"
)

// mmapSource serves sections as subslices of a read-only mapping of
// the whole segment file — queries touch only the pages the planned
// lists live on, and the kernel page cache is shared across processes
// opening the same segment.
type mmapSource struct {
	f    *os.File
	data []byte
}

// newMmapSource maps the segment file read-only. Callers fall back to
// positioned reads on error.
func newMmapSource(f *os.File, size int64) (sectionSource, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapSource{f: f, data: data}, nil
}

func (s *mmapSource) section(off, n int64) []byte {
	return s.data[off : off+n : off+n]
}

func (s *mmapSource) Close() error {
	err := syscall.Munmap(s.data)
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
