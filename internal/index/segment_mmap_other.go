//go:build !unix

package index

import (
	"errors"
	"os"
)

// newMmapSource is unavailable off unix; OpenSegment falls back to
// positioned reads.
func newMmapSource(f *os.File, size int64) (sectionSource, error) {
	return nil, errors.New("index: mmap unsupported on this platform")
}
