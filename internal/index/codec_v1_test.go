package index

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"expertfind/internal/kb"
)

// v1Writer hand-encodes the original flat segment format (version 1):
// flat delta-encoded postings, no skip entries. The current writer
// only emits version 2, so compatibility with archived segments is
// proven by encoding v1 here and reading it back.
type v1Writer struct{ buf bytes.Buffer }

func (w *v1Writer) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	w.buf.Write(b[:binary.PutUvarint(b[:], v)])
}

func (w *v1Writer) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf.Write(b[:])
}

func writeV1(ix *Index) []byte {
	w := &v1Writer{}
	w.buf.WriteString(codecMagic)
	w.uvarint(1)

	docs := make([]int64, 0, len(ix.docs))
	for d := range ix.docs {
		docs = append(docs, int64(d))
	}
	sortInt64s(docs)
	w.uvarint(uint64(len(docs)))
	prev := int64(0)
	for i, d := range docs {
		delta := d
		if i > 0 {
			delta = d - prev
		}
		w.uvarint(uint64(delta))
		prev = d
	}

	terms := make([]string, 0, len(ix.terms))
	for t := range ix.terms {
		terms = append(terms, t)
	}
	sortStrings(terms)
	w.uvarint(uint64(len(terms)))
	for _, t := range terms {
		w.uvarint(uint64(len(t)))
		w.buf.WriteString(t)
		ps := ix.terms[t].sorted()
		w.uvarint(uint64(len(ps)))
		prevDoc := int64(0)
		for j, p := range ps {
			delta := int64(p.doc)
			if j > 0 {
				delta = int64(p.doc) - prevDoc
			}
			w.uvarint(uint64(delta))
			w.uvarint(uint64(p.tf))
			prevDoc = int64(p.doc)
		}
	}

	ents := make([]int64, 0, len(ix.entities))
	for e := range ix.entities {
		ents = append(ents, int64(e))
	}
	sortInt64s(ents)
	w.uvarint(uint64(len(ents)))
	for _, e := range ents {
		w.uvarint(uint64(e))
		ps := ix.entities[kb.EntityID(e)].sorted()
		w.uvarint(uint64(len(ps)))
		prevDoc := int64(0)
		for j, p := range ps {
			delta := int64(p.doc)
			if j > 0 {
				delta = int64(p.doc) - prevDoc
			}
			w.uvarint(uint64(delta))
			w.uvarint(uint64(p.ef))
			w.f64(p.dScore)
			prevDoc = int64(p.doc)
		}
	}
	return w.buf.Bytes()
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCodecReadsV1 proves version-1 segments still load: the flat
// postings are rebuilt into the blocked layout, equal to the original
// index and scoring bit-identically (exhaustive and pruned).
func TestCodecReadsV1(t *testing.T) {
	ix := randomIndex(9, 400)
	got, err := ReadIndex(bytes.NewReader(writeV1(ix)))
	if err != nil {
		t.Fatalf("reading v1 segment: %v", err)
	}
	assertIndexesEqual(t, ix, got)

	need := fuzzNeed("swim pool train php", 17)
	for _, alpha := range []float64{0, 0.6, 1} {
		assertScoredBitIdentical(t, "v1 score", ix.Score(need, alpha), got.Score(need, alpha))
		assertScoredBitIdentical(t, "v1 topk", ix.ScoreTopK(need, alpha, 5, nil), got.ScoreTopK(need, alpha, 5, nil))
	}
}

// v2Segment hand-encodes a minimal version-2 segment so individual
// fields can be corrupted precisely. The base layout is two docs
// {5, 9}, one term "a" with postings (5, tf 2), (9, tf 1), and one
// entity 3 with posting (5, ef 1, dScore 0.5); mutate tweaks one field
// before encoding.
type v2Segment struct {
	nBlocksTerm   uint64 // block count declared for the term list
	termCount     uint64 // postings count declared for the term list
	blockN        uint64 // posting count declared for the term block
	maxDocDelta   uint64 // declared block max doc (delta from base 0)
	declMaxTF     uint64 // declared term block bound
	byteLen       *int   // override the term block's byte length
	firstDocDelta uint64 // first term posting's doc delta
	secondDelta   uint64 // second term posting's doc delta (0 = regression)
	entMaxW       float64
	entDScore     float64
	trailingByte  bool // append a stray byte inside the term block
}

func defaultV2() v2Segment {
	return v2Segment{
		nBlocksTerm: 1, termCount: 2, blockN: 2, maxDocDelta: 9, declMaxTF: 2,
		firstDocDelta: 5, secondDelta: 4, entMaxW: 1.5, entDScore: 0.5,
	}
}

func (s v2Segment) encode() []byte {
	w := &v1Writer{}
	w.buf.WriteString(codecMagic)
	w.uvarint(2)
	w.uvarint(2) // two docs: 5, 9
	w.uvarint(5)
	w.uvarint(4)

	w.uvarint(1) // one term
	w.uvarint(1)
	w.buf.WriteString("a")
	w.uvarint(s.termCount)
	w.uvarint(s.nBlocksTerm)
	w.uvarint(s.blockN)
	w.uvarint(s.maxDocDelta)
	w.uvarint(s.declMaxTF)
	var block v1Writer
	block.uvarint(s.firstDocDelta)
	block.uvarint(2) // tf
	block.uvarint(s.secondDelta)
	block.uvarint(1) // tf
	if s.trailingByte {
		block.buf.WriteByte(0)
	}
	bl := block.buf.Len()
	if s.byteLen != nil {
		bl = *s.byteLen
	}
	w.uvarint(uint64(bl))
	w.buf.Write(block.buf.Bytes())

	w.uvarint(1) // one entity
	w.uvarint(3)
	w.uvarint(1) // count
	w.uvarint(1) // blocks
	w.uvarint(1) // block n
	w.uvarint(5) // maxDocDelta
	w.f64(s.entMaxW)
	var eb v1Writer
	eb.uvarint(5) // doc delta
	eb.uvarint(1) // ef
	eb.f64(s.entDScore)
	w.uvarint(uint64(eb.buf.Len()))
	w.buf.Write(eb.buf.Bytes())
	return w.buf.Bytes()
}

// TestCodecV2RejectsBrokenSkipMetadata corrupts each load-bearing
// field of a valid v2 segment in turn; the reader must reject every
// variant — skip entries feed pruning proofs, so a segment whose
// declared bounds disagree with its postings must never load.
func TestCodecV2RejectsBrokenSkipMetadata(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader(defaultV2().encode())); err != nil {
		t.Fatalf("baseline v2 segment must load: %v", err)
	}
	three := 3
	huge := blockSize * 33
	cases := []struct {
		name    string
		mutate  func(*v2Segment)
		wantErr string
	}{
		{"wrong block count", func(s *v2Segment) { s.nBlocksTerm = 2 }, "blocks for"},
		{"count above docs", func(s *v2Segment) { s.termCount = 3 }, "postings for"},
		{"oversized block", func(s *v2Segment) { s.blockN = blockSize + 1 }, "oversized"},
		{"short block", func(s *v2Segment) { s.blockN = 1 }, "want"},
		{"wrong max doc", func(s *v2Segment) { s.maxDocDelta = 8 }, "declares max doc"},
		{"implausible max doc", func(s *v2Segment) { s.maxDocDelta = 1 << 33 }, "implausible max doc"},
		{"wrong bound", func(s *v2Segment) { s.declMaxTF = 1 }, "declares bound"},
		{"trailing bytes", func(s *v2Segment) { s.trailingByte = true }, "trailing"},
		{"byte length lies", func(s *v2Segment) { s.byteLen = &three }, "bad tf"},
		{"implausible byte length", func(s *v2Segment) { s.byteLen = &huge }, "implausible byte length"},
		{"doc regression", func(s *v2Segment) { s.secondDelta = 0 }, "strictly ascending"},
		{"unknown doc", func(s *v2Segment) { s.firstDocDelta = 6 }, "unknown doc"},
		{"wrong entity bound", func(s *v2Segment) { s.entMaxW = 2 }, "declares bound"},
		{"entity dScore range", func(s *v2Segment) { s.entDScore = 1.5; s.entMaxW = 2.5 }, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultV2()
			tc.mutate(&s)
			_, err := ReadIndex(bytes.NewReader(s.encode()))
			if err == nil {
				t.Fatalf("corrupted segment (%s) accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCodecRejectsUnsupportedVersion covers the version gate.
func TestCodecRejectsUnsupportedVersion(t *testing.T) {
	w := &v1Writer{}
	w.buf.WriteString(codecMagic)
	w.uvarint(3)
	w.uvarint(0)
	if _, err := ReadIndex(bytes.NewReader(w.buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("version 3 segment not rejected: %v", err)
	}
}

// TestGlobalStatsScoring scores a shard slice under materialized
// GlobalStats — the scatter coordinator's view — and requires the
// merged pruned rankings to match the monolithic index, exhaustive
// and top-k, through both the Sharded wrappers and the plain ones.
func TestGlobalStatsScoring(t *testing.T) {
	docs := randomDocs(71, 300, 0)
	flat := flatFromDocs(docs)

	// Materialize the global view the way the coordinator does.
	g := GlobalStats{Docs: flat.NumDocs(), TermDF: map[string]int{}, EntityDF: map[kb.EntityID]int{}}
	for term := range flat.terms {
		g.TermDF[term] = flat.DocFreq(term)
	}
	for e := range flat.entities {
		g.EntityDF[e] = flat.EntityFreq(e)
	}

	sharded := NewSharded(3)
	sharded.AddBatch(docs)
	need := fuzzNeed("swim pool train php copper", 23)
	for _, alpha := range []float64{0, 0.6, 1} {
		want := flat.Score(need, alpha)
		assertScoredBitIdentical(t, "global stats", want, sharded.ScoreStats(need, alpha, g))
		wantK := want
		if len(wantK) > 7 {
			wantK = wantK[:7]
		}
		assertScoredBitIdentical(t, "global stats topk", wantK, sharded.ScoreStatsTopK(need, alpha, g, 7, nil))
		assertScoredBitIdentical(t, "global stats topk flat", wantK, flat.ScoreStatsTopK(need, alpha, g, 7, nil))
	}
}
