package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// SegmentReader is a read-only view of one sealed on-disk segment: a
// v2 codec file whose posting lists are fetched from disk (or an mmap
// window) only when a query plans them, never resident all at once.
// Opening a segment runs one full sequential validation pass — every
// posting is decoded and checked against its skip metadata exactly
// like ReadIndex does — but retains only the dictionary: per-list file
// offsets, counts and maxima, plus the sorted document id set. After a
// successful open the file is trusted (the codec targets trusted local
// storage); a file mutated underneath an open reader panics rather
// than serving silently wrong postings.
type SegmentReader struct {
	path string
	size int64
	src  sectionSource

	docs  []DocID // ascending
	terms map[string]segList
	names []string // lexicographic
	ents  map[kb.EntityID]segList
	eids  []int64 // ascending
}

// segList is one dictionary entry: where a list body (starting at its
// postings-count uvarint) lives in the file, and the stats the store
// folds into global query planning without touching the disk.
type segList struct {
	off   int64
	end   int64
	count int
	maxW  float64
}

// sectionSource serves byte ranges of a sealed segment file. The
// returned slice is valid until the source is closed and must not be
// written to (the mmap implementation returns the mapping itself).
type sectionSource interface {
	section(off, n int64) []byte
	Close() error
}

// preadSource reads sections with positioned reads — the streaming
// fallback when mmap is unavailable or disabled.
type preadSource struct {
	f *os.File
}

func (s *preadSource) section(off, n int64) []byte {
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		panic(fmt.Sprintf("index: segment %s: read %d bytes at %d: %v", s.f.Name(), n, off, err))
	}
	return buf
}

func (s *preadSource) Close() error { return s.f.Close() }

// posReader tracks the logical byte offset of a buffered reader so the
// opener can record where each posting list body starts and ends.
type posReader struct {
	br  *bufio.Reader
	off int64
}

func (p *posReader) ReadByte() (byte, error) {
	b, err := p.br.ReadByte()
	if err == nil {
		p.off++
	}
	return b, err
}

func (p *posReader) Read(b []byte) (int, error) {
	n, err := p.br.Read(b)
	p.off += int64(n)
	return n, err
}

// OpenSegment opens and fully validates a sealed segment file. Only
// the blocked v2 format qualifies as a segment (v1 carries no skip
// metadata to validate against). forceStream disables mmap in favor of
// positioned reads.
func OpenSegment(path string, forceStream bool) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr, err := scanSegment(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if !forceStream {
		if src, err := newMmapSource(f, sr.size); err == nil {
			sr.src = src
			return sr, nil
		}
	}
	sr.src = &preadSource{f: f}
	return sr, nil
}

// scanSegment runs the sequential validation pass over f and builds
// the dictionary. The file offset is consumed; callers address the
// file positionally afterwards.
func scanSegment(f *os.File, path string) (*SegmentReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	pr := &posReader{br: bufio.NewReaderSize(f, 1<<20)}

	var magic [4]byte
	if _, err := io.ReadFull(pr, magic[:]); err != nil {
		return nil, fmt.Errorf("index: segment %s: reading magic: %w", path, err)
	}
	if string(magic[:]) != codecMagic {
		return nil, fmt.Errorf("index: segment %s: bad magic %q", path, magic)
	}
	version, err := binary.ReadUvarint(pr)
	if err != nil {
		return nil, fmt.Errorf("index: segment %s: reading version: %w", path, err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("index: segment %s: version %d is not a sealed segment (want %d)", path, version, codecVersion)
	}

	// Documents. The transient Index supplies the known-doc set the
	// shared block validators check postings against.
	ix := New()
	nDocs, err := binary.ReadUvarint(pr)
	if err != nil {
		return nil, fmt.Errorf("index: segment %s: reading doc count: %w", path, err)
	}
	if nDocs > 1<<31 {
		return nil, fmt.Errorf("index: segment %s: implausible doc count %d", path, nDocs)
	}
	sr := &SegmentReader{
		path:  path,
		size:  st.Size(),
		docs:  make([]DocID, 0, nDocs),
		terms: make(map[string]segList),
		ents:  make(map[kb.EntityID]segList),
	}
	prev := int64(0)
	for i := uint64(0); i < nDocs; i++ {
		delta, err := binary.ReadUvarint(pr)
		if err != nil {
			return nil, fmt.Errorf("index: segment %s: reading doc %d: %w", path, i, err)
		}
		d := int64(delta)
		if i > 0 {
			d = prev + int64(delta)
			if delta == 0 {
				return nil, fmt.Errorf("index: segment %s: duplicate doc %d", path, d)
			}
		}
		ix.docs[DocID(d)] = struct{}{}
		sr.docs = append(sr.docs, DocID(d))
		prev = d
	}

	// Terms: validate each list in full, keep only the dictionary.
	nTerms, err := binary.ReadUvarint(pr)
	if err != nil {
		return nil, fmt.Errorf("index: segment %s: reading term count: %w", path, err)
	}
	if nTerms > 1<<31 {
		return nil, fmt.Errorf("index: segment %s: implausible term count %d", path, nTerms)
	}
	sr.names = make([]string, 0, nTerms)
	prevName := ""
	for i := uint64(0); i < nTerms; i++ {
		tlen, err := binary.ReadUvarint(pr)
		if err != nil {
			return nil, fmt.Errorf("index: segment %s: reading term %d length: %w", path, i, err)
		}
		if tlen > 1<<16 {
			return nil, fmt.Errorf("index: segment %s: implausible term length %d", path, tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(pr, buf); err != nil {
			return nil, fmt.Errorf("index: segment %s: reading term %d: %w", path, i, err)
		}
		name := string(buf)
		if i > 0 && name <= prevName {
			return nil, fmt.Errorf("index: segment %s: term %q out of order", path, name)
		}
		prevName = name
		off := pr.off
		l, err := readTermBlocks(pr, ix, nDocs, name)
		if err != nil {
			return nil, fmt.Errorf("index: segment %s: %w", path, err)
		}
		if l.count == 0 {
			return nil, fmt.Errorf("index: segment %s: term %q has no postings", path, name)
		}
		sr.terms[name] = segList{off: off, end: pr.off, count: l.count, maxW: l.maxW}
		sr.names = append(sr.names, name)
	}

	// Entities.
	nEnts, err := binary.ReadUvarint(pr)
	if err != nil {
		return nil, fmt.Errorf("index: segment %s: reading entity count: %w", path, err)
	}
	if nEnts > 1<<31 {
		return nil, fmt.Errorf("index: segment %s: implausible entity count %d", path, nEnts)
	}
	sr.eids = make([]int64, 0, nEnts)
	prevID := int64(-1)
	for i := uint64(0); i < nEnts; i++ {
		eid, err := binary.ReadUvarint(pr)
		if err != nil {
			return nil, fmt.Errorf("index: segment %s: reading entity %d id: %w", path, i, err)
		}
		if int64(eid) <= prevID {
			return nil, fmt.Errorf("index: segment %s: entity %d out of order", path, eid)
		}
		prevID = int64(eid)
		off := pr.off
		l, err := readEntityBlocks(pr, ix, nDocs, eid)
		if err != nil {
			return nil, fmt.Errorf("index: segment %s: %w", path, err)
		}
		if l.count == 0 {
			return nil, fmt.Errorf("index: segment %s: entity %d has no postings", path, eid)
		}
		sr.ents[kb.EntityID(eid)] = segList{off: off, end: pr.off, count: l.count, maxW: l.maxW}
		sr.eids = append(sr.eids, int64(eid))
	}

	if _, err := pr.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: segment %s: trailing bytes after entity section", path)
	}
	return sr, nil
}

// Close releases the underlying file (and mapping, if any).
func (sr *SegmentReader) Close() error { return sr.src.Close() }

// Path returns the segment's file path.
func (sr *SegmentReader) Path() string { return sr.path }

// Size returns the segment file's size in bytes.
func (sr *SegmentReader) Size() int64 { return sr.size }

// NumDocs returns the number of documents in the segment, including
// any the owning store has tombstoned.
func (sr *SegmentReader) NumDocs() int { return len(sr.docs) }

// Has reports whether the segment holds id (tombstoned or not).
func (sr *SegmentReader) Has(id DocID) bool {
	i := sort.Search(len(sr.docs), func(i int) bool { return sr.docs[i] >= id })
	return i < len(sr.docs) && sr.docs[i] == id
}

// docFreq returns the segment-local document frequency of a term.
func (sr *SegmentReader) docFreq(t string) int { return sr.terms[t].count }

// entityFreq returns the segment-local document frequency of an entity.
func (sr *SegmentReader) entityFreq(e kb.EntityID) int { return sr.ents[e].count }

// segCorrupt reports post-open structural damage. The open pass proved
// the file well-formed, so reaching this means the file changed under
// the reader — there is no correct answer to serve.
func segCorrupt(path, what string) {
	panic(fmt.Sprintf("index: segment %s corrupted after open (%s)", path, what))
}

func (sr *SegmentReader) uvarint(raw []byte, pos int) (uint64, int) {
	if pos >= len(raw) {
		segCorrupt(sr.path, "truncated varint")
	}
	v, n := binary.Uvarint(raw[pos:])
	if n <= 0 {
		segCorrupt(sr.path, "bad varint")
	}
	return v, pos + n
}

// loadTermList materializes one term's posting list from the file:
// block payloads are copied into a contiguous buffer and the skip
// entries rebuilt from the stored per-block headers. Returns nil when
// the segment has no postings for the term.
func (sr *SegmentReader) loadTermList(t string) *termList {
	ref, ok := sr.terms[t]
	if !ok {
		return nil
	}
	raw := sr.src.section(ref.off, ref.end-ref.off)
	count, pos := sr.uvarint(raw, 0)
	nBlocks, pos := sr.uvarint(raw, pos)
	l := &termList{count: int(count), maxW: ref.maxW}
	l.blocks = make([]blockMeta, 0, nBlocks)
	l.data = make([]byte, 0, len(raw)-pos)
	base := DocID(0)
	for b := uint64(0); b < nBlocks; b++ {
		n, p := sr.uvarint(raw, pos)
		maxDocDelta, p := sr.uvarint(raw, p)
		maxW, p := sr.uvarint(raw, p)
		byteLen, p := sr.uvarint(raw, p)
		if p+int(byteLen) > len(raw) {
			segCorrupt(sr.path, "block payload past list end")
		}
		bm := blockMeta{off: len(l.data), n: int(n), maxDoc: base + DocID(maxDocDelta), maxW: float64(maxW)}
		l.data = append(l.data, raw[p:p+int(byteLen)]...)
		pos = p + int(byteLen)
		base = bm.maxDoc
		l.blocks = append(l.blocks, bm)
	}
	if pos != len(raw) {
		segCorrupt(sr.path, "trailing bytes in term list")
	}
	return l
}

// loadEntityList is loadTermList for an entity list (float64 block
// bounds).
func (sr *SegmentReader) loadEntityList(e kb.EntityID) *entityList {
	ref, ok := sr.ents[e]
	if !ok {
		return nil
	}
	raw := sr.src.section(ref.off, ref.end-ref.off)
	count, pos := sr.uvarint(raw, 0)
	nBlocks, pos := sr.uvarint(raw, pos)
	l := &entityList{count: int(count), maxW: ref.maxW}
	l.blocks = make([]blockMeta, 0, nBlocks)
	l.data = make([]byte, 0, len(raw)-pos)
	base := DocID(0)
	for b := uint64(0); b < nBlocks; b++ {
		n, p := sr.uvarint(raw, pos)
		maxDocDelta, p := sr.uvarint(raw, p)
		if p+8 > len(raw) {
			segCorrupt(sr.path, "truncated block bound")
		}
		maxW := float64FromBytes(raw[p:])
		p += 8
		byteLen, p := sr.uvarint(raw, p)
		if p+int(byteLen) > len(raw) {
			segCorrupt(sr.path, "block payload past list end")
		}
		bm := blockMeta{off: len(l.data), n: int(n), maxDoc: base + DocID(maxDocDelta), maxW: maxW}
		l.data = append(l.data, raw[p:p+int(byteLen)]...)
		pos = p + int(byteLen)
		base = bm.maxDoc
		l.blocks = append(l.blocks, bm)
	}
	if pos != len(raw) {
		segCorrupt(sr.path, "trailing bytes in entity list")
	}
	return l
}

// planView materializes exactly the lists a query plan touches into an
// ephemeral Index. The scorers (scorePlan / scorePlanTopK) read only
// the term and entity maps, so scoring this view runs the identical
// accumulation code — and produces bit-identical contributions — as an
// in-memory index holding the same postings.
func (sr *SegmentReader) planView(plan queryPlan) *Index {
	v := &Index{
		terms:    make(map[string]*termList, len(plan.terms)),
		entities: make(map[kb.EntityID]*entityList, len(plan.entities)),
	}
	for _, pt := range plan.terms {
		if l := sr.loadTermList(pt.term); l != nil {
			v.terms[pt.term] = l
		}
	}
	for _, pe := range plan.entities {
		if l := sr.loadEntityList(pe.e); l != nil {
			v.entities[pe.e] = l
		}
	}
	return v
}

// segmentMergeSource adapts a segment (minus its tombstoned documents)
// to the streaming merge writer.
type segmentMergeSource struct {
	r    *SegmentReader
	drop map[DocID]analysis.Analyzed
}

func (s segmentMergeSource) dropped(d DocID) bool {
	_, ok := s.drop[d]
	return ok
}

func (s segmentMergeSource) liveDocs() []int64 {
	out := make([]int64, 0, len(s.r.docs))
	for _, d := range s.r.docs {
		if !s.dropped(d) {
			out = append(out, int64(d))
		}
	}
	return out
}

func (s segmentMergeSource) termNames() []string { return s.r.names }

func (s segmentMergeSource) termPostings(t string) []termPosting {
	l := s.r.loadTermList(t)
	if l == nil {
		return nil
	}
	ps := l.decodeAll() // sealed lists decode in ascending doc order
	if len(s.drop) == 0 {
		return ps
	}
	kept := ps[:0]
	for _, p := range ps {
		if !s.dropped(p.doc) {
			kept = append(kept, p)
		}
	}
	return kept
}

func (s segmentMergeSource) entityIDs() []int64 { return s.r.eids }

func (s segmentMergeSource) entityPostings(e kb.EntityID) []entityPosting {
	l := s.r.loadEntityList(e)
	if l == nil {
		return nil
	}
	ps := l.decodeAll()
	if len(s.drop) == 0 {
		return ps
	}
	kept := ps[:0]
	for _, p := range ps {
		if !s.dropped(p.doc) {
			kept = append(kept, p)
		}
	}
	return kept
}
