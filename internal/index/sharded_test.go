package index

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// randomDocs builds a seeded synthetic corpus as (id, analyzed) pairs
// so the same documents can populate a monolithic and a sharded index.
// idOffset shifts the id range, keeping independently generated sets
// disjoint for merge tests.
func randomDocs(seed int64, nDocs int, idOffset int) []Doc {
	r := rand.New(rand.NewSource(seed))
	vocab := shardTestVocab()
	docs := make([]Doc, 0, nDocs)
	for i := 0; i < nDocs; i++ {
		terms := map[string]int{}
		for j := 0; j < 1+r.Intn(10); j++ {
			terms[vocab[r.Intn(len(vocab))]]++
		}
		ents := map[kb.EntityID]analysis.EntityStats{}
		for j := 0; j < r.Intn(4); j++ {
			ds := 0.0
			if r.Intn(4) > 0 { // leave some mentions at dScore 0 (we = 0 path)
				ds = r.Float64()
			}
			ents[kb.EntityID(r.Intn(50))] = analysis.EntityStats{Freq: 1 + r.Intn(3), DScore: ds}
		}
		// Sparse, non-contiguous ids exercise the hash routing.
		docs = append(docs, Doc{
			ID: DocID(idOffset + i*3 + r.Intn(2)),
			A:  analysis.Analyzed{Terms: terms, Entities: ents},
		})
	}
	return docs
}

func shardTestVocab() []string {
	return []string{"swim", "pool", "php", "copper", "milan", "guitar", "game", "match", "train", "code", "wave", "atom"}
}

func flatFromDocs(docs []Doc) *Index {
	ix := New()
	for _, d := range docs {
		ix.Add(d.ID, d.A)
	}
	return ix
}

// randomNeed draws a need over (mostly) corpus vocabulary and entity
// ids, mixing in unseen terms/entities and zero-frequency terms so the
// skip paths are exercised.
func randomNeed(r *rand.Rand) analysis.Analyzed {
	vocab := shardTestVocab()
	terms := map[string]int{}
	for j := 0; j < 1+r.Intn(6); j++ {
		terms[vocab[r.Intn(len(vocab))]] = 1 + r.Intn(3)
	}
	if r.Intn(3) == 0 {
		terms["neverindexedterm"] = 1
	}
	if r.Intn(3) == 0 {
		terms[vocab[r.Intn(len(vocab))]] = 0 // qtf <= 0 must be ignored
	}
	ents := map[kb.EntityID]analysis.EntityStats{}
	for j := 0; j < r.Intn(4); j++ {
		ents[kb.EntityID(r.Intn(60))] = analysis.EntityStats{Freq: 1, DScore: r.Float64()}
	}
	return analysis.Analyzed{Terms: terms, Entities: ents}
}

// assertScoredBitIdentical fails unless the rankings agree exactly:
// same length, same docs in the same order, same float64 bits.
func assertScoredBitIdentical(t *testing.T, label string, want, got []ScoredDoc) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d matches", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Doc != got[i].Doc {
			t.Fatalf("%s: rank %d doc %d vs %d", label, i, want[i].Doc, got[i].Doc)
		}
		if math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Fatalf("%s: rank %d (doc %d) score bits %x vs %x (%v vs %v)",
				label, i, want[i].Doc,
				math.Float64bits(want[i].Score), math.Float64bits(got[i].Score),
				want[i].Score, got[i].Score)
		}
	}
}

var equivalenceShardCounts = []int{1, 2, 3, 7, 16}

// TestShardedScoreEquivalence is the differential property test of
// the sharding contract: for randomized corpora and needs, a sharded
// index returns exactly the sequential ranking — same docs, same
// order, same float64 bits — for every shard count and alpha edge.
func TestShardedScoreEquivalence(t *testing.T) {
	alphas := []float64{0, 0.6, 1}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		docs := randomDocs(seed, 300, 0)
		flat := flatFromDocs(docs)
		r := rand.New(rand.NewSource(seed + 100))
		needs := []analysis.Analyzed{
			{},                                   // empty need
			{Terms: map[string]int{"unseen": 2}}, // unseen term only
			{Terms: map[string]int{"swim": 0}},   // zero-frequency term
			{Entities: map[kb.EntityID]analysis.EntityStats{999: {Freq: 1}}}, // unseen entity
		}
		for i := 0; i < 8; i++ {
			needs = append(needs, randomNeed(r))
		}
		for _, n := range equivalenceShardCounts {
			sh := NewSharded(n)
			sh.AddBatch(docs)
			for _, alpha := range alphas {
				for qi, need := range needs {
					want := flat.Score(need, alpha)
					got := sh.Score(need, alpha)
					assertScoredBitIdentical(t,
						fmt.Sprintf("seed=%d shards=%d alpha=%v need=%d", seed, n, alpha, qi),
						want, got)
				}
			}
		}
	}
}

// TestScoreByteIdenticalAcrossRuns is the regression test for the
// map-iteration-order nondeterminism: the same query repeated 50×
// must return byte-identical ranked output, sequentially and sharded.
// Before query planning sorted the need's terms/entities, float
// accumulation order followed Go's randomized map iteration and the
// low bits of tied scores could differ between calls.
func TestScoreByteIdenticalAcrossRuns(t *testing.T) {
	docs := randomDocs(42, 400, 0)
	flat := flatFromDocs(docs)
	sh := NewSharded(7)
	sh.AddBatch(docs)
	// A wide need matching many docs through several terms and
	// entities, so association order would show up in the low bits.
	need := randomNeed(rand.New(rand.NewSource(7)))
	for _, alpha := range []float64{0, 0.6, 1} {
		base := flat.Score(need, alpha)
		for i := 0; i < 50; i++ {
			assertScoredBitIdentical(t, fmt.Sprintf("flat alpha=%v run=%d", alpha, i), base, flat.Score(need, alpha))
			assertScoredBitIdentical(t, fmt.Sprintf("sharded alpha=%v run=%d", alpha, i), base, sh.Score(need, alpha))
		}
	}
}

func TestScoreWorkersAnyBoundSameRanking(t *testing.T) {
	docs := randomDocs(3, 250, 0)
	sh := NewSharded(8)
	sh.AddBatch(docs)
	need := randomNeed(rand.New(rand.NewSource(9)))
	base := sh.ScoreWorkers(need, 0.6, 1)
	for _, workers := range []int{0, 2, 8, 64} {
		assertScoredBitIdentical(t, fmt.Sprintf("workers=%d", workers), base, sh.ScoreWorkers(need, 0.6, workers))
	}
}

func TestShardedStatsMatchFlat(t *testing.T) {
	docs := randomDocs(11, 200, 0)
	flat := flatFromDocs(docs)
	sh := NewSharded(5)
	sh.AddBatch(docs)

	if sh.NumShards() != 5 {
		t.Errorf("NumShards = %d", sh.NumShards())
	}
	if flat.NumDocs() != sh.NumDocs() {
		t.Fatalf("NumDocs: %d vs %d", flat.NumDocs(), sh.NumDocs())
	}
	for _, d := range docs {
		if !sh.Has(d.ID) {
			t.Fatalf("missing doc %d", d.ID)
		}
	}
	if sh.Has(DocID(1 << 20)) {
		t.Error("Has(unknown) = true")
	}
	for _, term := range append(shardTestVocab(), "unseen") {
		if flat.DocFreq(term) != sh.DocFreq(term) {
			t.Errorf("DocFreq(%q): %d vs %d", term, flat.DocFreq(term), sh.DocFreq(term))
		}
		if math.Float64bits(flat.IRF(term)) != math.Float64bits(sh.IRF(term)) {
			t.Errorf("IRF(%q): %v vs %v", term, flat.IRF(term), sh.IRF(term))
		}
	}
	for e := 0; e < 60; e++ {
		id := kb.EntityID(e)
		if flat.EntityFreq(id) != sh.EntityFreq(id) {
			t.Errorf("EntityFreq(%d): %d vs %d", e, flat.EntityFreq(id), sh.EntityFreq(id))
		}
		if math.Float64bits(flat.EIRF(id)) != math.Float64bits(sh.EIRF(id)) {
			t.Errorf("EIRF(%d): %v vs %v", e, flat.EIRF(id), sh.EIRF(id))
		}
	}
}

func TestNewShardedFromIndexEquivalence(t *testing.T) {
	flat := randomIndex(6, 300)
	sh := NewShardedFromIndex(flat, 6)
	if flat.NumDocs() != sh.NumDocs() {
		t.Fatalf("NumDocs: %d vs %d", flat.NumDocs(), sh.NumDocs())
	}
	need := randomNeed(rand.New(rand.NewSource(5)))
	assertScoredBitIdentical(t, "from-index", flat.Score(need, 0.6), sh.Score(need, 0.6))

	// Flatten/WriteTo must reproduce the exact segment the monolithic
	// index writes: the shard layout leaves no trace on disk.
	var a, b bytes.Buffer
	if _, err := flat.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("sharded segment differs from monolithic segment")
	}
}

func TestShardedMergeEqualAndUnequalCounts(t *testing.T) {
	docsA := randomDocs(21, 120, 0)
	docsB := randomDocs(22, 120, 1000)
	flat := flatFromDocs(append(append([]Doc(nil), docsA...), docsB...))
	need := randomNeed(rand.New(rand.NewSource(2)))

	// Equal shard counts: pairwise merge.
	a4 := NewSharded(4)
	a4.AddBatch(docsA)
	b4 := NewSharded(4)
	b4.AddBatch(docsB)
	a4.Merge(b4)
	assertScoredBitIdentical(t, "equal-counts", flat.Score(need, 0.6), a4.Score(need, 0.6))

	// Unequal shard counts: per-posting re-routing.
	a3 := NewSharded(3)
	a3.AddBatch(docsA)
	b5 := NewSharded(5)
	b5.AddBatch(docsB)
	a3.Merge(b5)
	if a3.NumShards() != 3 {
		t.Fatalf("merge changed shard count to %d", a3.NumShards())
	}
	assertScoredBitIdentical(t, "unequal-counts", flat.Score(need, 0.6), a3.Score(need, 0.6))
}

func TestShardedMergeOverlapPanics(t *testing.T) {
	doc := analysis.Analyzed{Terms: map[string]int{"x": 1}}
	a, b := NewSharded(3), NewSharded(3)
	a.Add(1, doc)
	b.Add(1, doc)
	defer func() {
		if recover() == nil {
			t.Error("overlapping sharded merge did not panic")
		}
	}()
	a.Merge(b)
}

func TestShardedAddDuplicatePanics(t *testing.T) {
	sh := NewSharded(4)
	doc := analysis.Analyzed{Terms: map[string]int{"x": 1}}
	sh.Add(7, doc)
	defer func() {
		if recover() == nil {
			t.Error("duplicate sharded Add did not panic")
		}
	}()
	sh.Add(7, doc)
}

// TestShardedConcurrentScoreAddMerge hammers a sharded index with
// concurrent queries, stat reads, Adds and Merges. Run under -race it
// pins the locking discipline; results are only sanity-checked (the
// doc set is mutating underneath the queries).
func TestShardedConcurrentScoreAddMerge(t *testing.T) {
	sh := NewSharded(4)
	sh.AddBatch(randomDocs(31, 150, 0))
	need := randomNeed(rand.New(rand.NewSource(8)))

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got := sh.ScoreWorkers(need, 0.6, 1+g%3)
				for j := 1; j < len(got); j++ {
					if scoredLess(got[j], got[j-1]) {
						t.Errorf("ranking out of order at %d", j)
						return
					}
				}
				_ = sh.NumDocs()
				_ = sh.IRF("swim")
				_ = sh.Has(DocID(i))
			}
		}(g)
	}

	// Writers: fresh ids, disjoint from the seed corpus and each other.
	writers.Add(1)
	go func() {
		defer writers.Done()
		doc := analysis.Analyzed{Terms: map[string]int{"swim": 2, "pool": 1}}
		for i := 0; i < 200; i++ {
			sh.Add(DocID(10_000+i), doc)
		}
	}()
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 10; i++ {
			other := NewSharded(4)
			other.AddBatch(randomDocs(int64(40+i), 20, 20_000+1000*i))
			sh.Merge(other)
		}
	}()
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 5; i++ {
			other := NewSharded(3) // unequal count: exercises Flatten+MergeIndex
			other.AddBatch(randomDocs(int64(60+i), 20, 40_000+1000*i))
			sh.Merge(other)
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()

	// After all writers finish the index must be consistent again.
	if sh.NumDocs() == 0 {
		t.Fatal("index empty after concurrent build")
	}
	base := sh.Score(need, 0.6)
	assertScoredBitIdentical(t, "post-mutation determinism", base, sh.Score(need, 0.6))
}

// benchCorpus is the large synthetic corpus shared by the sharded
// scoring benchmarks: heavy posting lists so per-shard work dominates
// goroutine overhead.
var benchCorpus struct {
	once sync.Once
	docs []Doc
	need analysis.Analyzed
}

func benchShardCorpus() ([]Doc, analysis.Analyzed) {
	benchCorpus.once.Do(func() {
		r := rand.New(rand.NewSource(1))
		const nDocs, vocabSize = 60_000, 120
		vocab := make([]string, vocabSize)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("term%03d", i)
		}
		docs := make([]Doc, nDocs)
		for i := range docs {
			terms := map[string]int{}
			for j := 0; j < 16; j++ {
				terms[vocab[r.Intn(vocabSize)]]++
			}
			ents := map[kb.EntityID]analysis.EntityStats{
				kb.EntityID(r.Intn(200)): {Freq: 1 + r.Intn(2), DScore: r.Float64()},
			}
			docs[i] = Doc{ID: DocID(i), A: analysis.Analyzed{Terms: terms, Entities: ents}}
		}
		need := analysis.Analyzed{Terms: map[string]int{}, Entities: map[kb.EntityID]analysis.EntityStats{}}
		for j := 0; j < 12; j++ {
			need.Terms[vocab[r.Intn(vocabSize)]] = 1
		}
		for j := 0; j < 4; j++ {
			need.Entities[kb.EntityID(r.Intn(200))] = analysis.EntityStats{Freq: 1, DScore: 1}
		}
		benchCorpus.docs, benchCorpus.need = docs, need
	})
	return benchCorpus.docs, benchCorpus.need
}

// BenchmarkScoreSharded measures Eq. 1 scoring over a 60k-doc corpus
// per shard count. shards=1 is the sequential reference; on a
// multi-core runner shards=GOMAXPROCS must show a clear speedup
// (workers are capped at GOMAXPROCS, so a single-core runner
// degenerates to the sequential path for every shard count).
func BenchmarkScoreSharded(b *testing.B) {
	docs, need := benchShardCorpus()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sh := NewSharded(n)
			sh.AddBatch(docs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Score(need, 0.6)
			}
		})
	}
}

// BenchmarkScoreShardedBuild measures the bulk per-shard corpus build.
func BenchmarkScoreShardedBuild(b *testing.B) {
	docs, _ := benchShardCorpus()
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh := NewSharded(n)
				sh.AddBatch(docs)
			}
		})
	}
}
