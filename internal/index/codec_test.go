package index

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// randomIndex builds an index with random synthetic documents.
func randomIndex(seed int64, nDocs int) *Index {
	r := rand.New(rand.NewSource(seed))
	vocab := []string{"swim", "pool", "php", "copper", "milan", "guitar", "game", "match", "train", "code", "wave", "atom"}
	ix := New()
	for i := 0; i < nDocs; i++ {
		terms := map[string]int{}
		for j := 0; j < 1+r.Intn(10); j++ {
			terms[vocab[r.Intn(len(vocab))]]++
		}
		ents := map[kb.EntityID]analysis.EntityStats{}
		for j := 0; j < r.Intn(4); j++ {
			ents[kb.EntityID(r.Intn(50))] = analysis.EntityStats{
				Freq:   1 + r.Intn(3),
				DScore: r.Float64(),
			}
		}
		// Non-contiguous doc ids exercise the delta coding.
		ix.Add(DocID(i*3+r.Intn(2)), analysis.Analyzed{Terms: terms, Entities: ents})
	}
	return ix
}

func assertIndexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if a.NumDocs() != b.NumDocs() {
		t.Fatalf("doc counts: %d vs %d", a.NumDocs(), b.NumDocs())
	}
	if len(a.terms) != len(b.terms) {
		t.Fatalf("term counts: %d vs %d", len(a.terms), len(b.terms))
	}
	for term, la := range a.terms {
		lb := b.terms[term]
		if lb == nil || la.count != lb.count {
			t.Fatalf("term %q postings: %d vs %v", term, la.count, lb)
		}
		sa, sb := la.sorted(), lb.sorted()
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("term %q posting %d: %+v vs %+v", term, i, sa[i], sb[i])
			}
		}
		if la.maxW != lb.maxW {
			t.Fatalf("term %q maxW: %g vs %g", term, la.maxW, lb.maxW)
		}
	}
	if len(a.entities) != len(b.entities) {
		t.Fatalf("entity counts: %d vs %d", len(a.entities), len(b.entities))
	}
	for e, la := range a.entities {
		lb := b.entities[e]
		if lb == nil {
			t.Fatalf("entity %d missing", e)
		}
		sa, sb := la.sorted(), lb.sorted()
		if len(sa) != len(sb) {
			t.Fatalf("entity %d postings: %d vs %d", e, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i].doc != sb[i].doc || sa[i].ef != sb[i].ef ||
				math.Abs(sa[i].dScore-sb[i].dScore) > 0 {
				t.Fatalf("entity %d posting %d: %+v vs %+v", e, i, sa[i], sb[i])
			}
		}
		if la.maxW != lb.maxW {
			t.Fatalf("entity %d maxW: %g vs %g", e, la.maxW, lb.maxW)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ix := randomIndex(1, 200)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, got)
}

func TestCodecRoundTripPreservesScoring(t *testing.T) {
	ix := randomIndex(2, 500)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	need := analysis.Analyzed{
		Terms:    map[string]int{"swim": 2, "pool": 1, "code": 1},
		Entities: map[kb.EntityID]analysis.EntityStats{3: {Freq: 1, DScore: 1}},
	}
	a := ix.Score(need, 0.6)
	b := got.Score(need, 0.6)
	if len(a) != len(b) {
		t.Fatalf("score lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Fatalf("score %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCodecEmptyIndex(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", got.NumDocs())
	}
}

func TestCodecDeterministicOutput(t *testing.T) {
	ix := randomIndex(3, 100)
	var a, b bytes.Buffer
	if _, err := ix.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization not deterministic")
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("NOPE plus junk")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadIndex(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	ix := randomIndex(4, 50)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any strict prefix must fail to decode (never silently succeed
	// with fewer postings). Check a spread of cut points past the
	// header.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		cut := int(frac * float64(len(full)))
		if cut < 5 {
			continue
		}
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// Property: random byte corruption never panics; it either fails or
// (rarely, when it hits a value byte) yields a structurally valid
// index.
func TestCodecCorruptionNeverPanics(t *testing.T) {
	ix := randomIndex(5, 80)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	f := func(pos uint16, val byte) bool {
		corrupted := append([]byte(nil), full...)
		corrupted[int(pos)%len(corrupted)] = val
		_, _ = ReadIndex(bytes.NewReader(corrupted)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsInvalidDScore(t *testing.T) {
	// Hand-craft an entity posting with dScore > 1 by writing a valid
	// index and patching the float bytes.
	ix := New()
	ix.Add(1, analysis.Analyzed{
		Terms:    map[string]int{"x": 1},
		Entities: map[kb.EntityID]analysis.EntityStats{7: {Freq: 1, DScore: 0.5}},
	})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The final 8 bytes are the dScore of the single entity posting.
	for i := len(data) - 8; i < len(data); i++ {
		data[i] = 0xFF // NaN pattern
	}
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("NaN dScore accepted")
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	ix := randomIndex(6, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	ix := randomIndex(7, 2000)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadIndex(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
