package index

import (
	"encoding/binary"
	"math"
	"sort"
)

// Blocked posting lists. Each list keeps its postings in two regions:
//
//   - a sealed region of fixed-size blocks, delta-encoded on ascending
//     DocID (uvarint deltas, each block's base is the previous block's
//     maximum doc id), with one skip entry per block recording the
//     block's byte offset, posting count, maximum doc id and maximum
//     weightless posting score;
//   - a small unsorted tail of recent Add/Merge postings.
//
// Sealing happens at build time (Add/Merge), never during scoring, so
// concurrent Score calls stay read-only. The tail is folded into the
// sealed region whenever it reaches max(blockSize, sealed/4) postings,
// which keeps re-encoding amortized near O(n log n) over a build.
//
// The skip entries are what the top-k pruner consumes: the "weightless"
// score of a posting is its contribution to Eq. (1) with the query
// weight divided out — tf for a term posting, ef·we for an entity
// posting — so multiplying a block's maximum by the planned weight
// bounds every member's contribution without decoding the block.

// blockSize is the number of postings per sealed block. 128 keeps a
// block within a few cache lines when decoded while making the
// per-block skip metadata (~32 bytes) a <2% overhead.
const blockSize = 128

// blockMeta is one sealed block's skip entry.
type blockMeta struct {
	off    int     // byte offset of the block in the list's data
	n      int     // postings in the block
	maxDoc DocID   // maximum (= last) doc id in the block
	maxW   float64 // maximum weightless posting score in the block
}

// termList is a blocked posting list for one term.
type termList struct {
	data   []byte
	blocks []blockMeta
	tail   []termPosting
	count  int     // total postings, sealed + tail
	maxW   float64 // list-wide maximum weightless score (max tf)
}

// entityList is a blocked posting list for one entity.
type entityList struct {
	data   []byte
	blocks []blockMeta
	tailE  []entityPosting
	count  int
	maxW   float64 // list-wide maximum weightless score (max ef·we)
}

// entityWeight is the weightless Eq. (1) contribution of an entity
// posting: ef·we with we = 1+dScore for positive disambiguation
// confidence, 0 otherwise (Eq. 2).
func entityWeight(p entityPosting) float64 {
	if p.dScore > 0 {
		return float64(p.ef) * (1 + p.dScore)
	}
	return 0
}

// sealDue reports whether a tail of t postings over a list of count
// total postings should be folded into the sealed region.
func sealDue(t, count int) bool {
	sealed := count - t
	return t >= blockSize && t*4 >= sealed
}

func (l *termList) add(p termPosting) {
	l.tail = append(l.tail, p)
	l.count++
	if w := float64(p.tf); w > l.maxW {
		l.maxW = w
	}
	if sealDue(len(l.tail), l.count) {
		l.seal()
	}
}

func (l *entityList) add(p entityPosting) {
	l.tailE = append(l.tailE, p)
	l.count++
	if w := entityWeight(p); w > l.maxW {
		l.maxW = w
	}
	if sealDue(len(l.tailE), l.count) {
		l.seal()
	}
}

// seal folds the tail into the sealed region: decode, merge, sort by
// doc id, re-encode into fixed-size blocks.
func (l *termList) seal() {
	all := l.decodeAll()
	l.encode(sortTermPostings(all))
}

func (l *entityList) seal() {
	all := l.decodeAll()
	l.encode(sortEntityPostings(all))
}

// decodeAll returns every posting, sealed region first (in doc order)
// then the tail (in insertion order).
func (l *termList) decodeAll() []termPosting {
	out := make([]termPosting, 0, l.count)
	l.forEach(func(p termPosting) { out = append(out, p) })
	return out
}

func (l *entityList) decodeAll() []entityPosting {
	out := make([]entityPosting, 0, l.count)
	l.forEach(func(p entityPosting) { out = append(out, p) })
	return out
}

// encode rebuilds the sealed region from postings sorted by ascending
// doc id and clears the tail. The layout is canonical: block boundaries
// fall every blockSize postings regardless of the insertion history, so
// two lists holding the same postings encode byte-identically.
func (l *termList) encode(ps []termPosting) {
	l.data = l.data[:0]
	l.blocks = l.blocks[:0]
	prev := DocID(0)
	for start := 0; start < len(ps); start += blockSize {
		end := start + blockSize
		if end > len(ps) {
			end = len(ps)
		}
		bm := blockMeta{off: len(l.data), n: end - start}
		for _, p := range ps[start:end] {
			l.data = binary.AppendUvarint(l.data, uint64(p.doc-prev))
			l.data = binary.AppendUvarint(l.data, uint64(p.tf))
			prev = p.doc
			if w := float64(p.tf); w > bm.maxW {
				bm.maxW = w
			}
		}
		bm.maxDoc = prev
		l.blocks = append(l.blocks, bm)
	}
	l.tail = nil
	l.count = len(ps)
}

func (l *entityList) encode(ps []entityPosting) {
	l.data = l.data[:0]
	l.blocks = l.blocks[:0]
	prev := DocID(0)
	for start := 0; start < len(ps); start += blockSize {
		end := start + blockSize
		if end > len(ps) {
			end = len(ps)
		}
		bm := blockMeta{off: len(l.data), n: end - start}
		for _, p := range ps[start:end] {
			l.data = binary.AppendUvarint(l.data, uint64(p.doc-prev))
			l.data = binary.AppendUvarint(l.data, uint64(p.ef))
			l.data = appendFloat64(l.data, p.dScore)
			prev = p.doc
			if w := entityWeight(p); w > bm.maxW {
				bm.maxW = w
			}
		}
		bm.maxDoc = prev
		l.blocks = append(l.blocks, bm)
	}
	l.tailE = nil
	l.count = len(ps)
}

// blockEnd returns the byte offset one past block i.
func (l *termList) blockEnd(i int) int {
	if i+1 < len(l.blocks) {
		return l.blocks[i+1].off
	}
	return len(l.data)
}

func (l *entityList) blockEnd(i int) int {
	if i+1 < len(l.blocks) {
		return l.blocks[i+1].off
	}
	return len(l.data)
}

// decodeBlock appends block i's postings to dst. base is the delta
// base (the previous block's maxDoc, 0 for the first block).
func (l *termList) decodeBlock(i int, base DocID, dst []termPosting) []termPosting {
	bm := l.blocks[i]
	pos, prev := bm.off, base
	for j := 0; j < bm.n; j++ {
		delta, n := binary.Uvarint(l.data[pos:])
		pos += n
		tf, n := binary.Uvarint(l.data[pos:])
		pos += n
		prev += DocID(delta)
		dst = append(dst, termPosting{doc: prev, tf: int32(tf)})
	}
	return dst
}

func (l *entityList) decodeBlock(i int, base DocID, dst []entityPosting) []entityPosting {
	bm := l.blocks[i]
	pos, prev := bm.off, base
	for j := 0; j < bm.n; j++ {
		delta, n := binary.Uvarint(l.data[pos:])
		pos += n
		ef, n := binary.Uvarint(l.data[pos:])
		pos += n
		dScore := float64FromBytes(l.data[pos:])
		pos += 8
		prev += DocID(delta)
		dst = append(dst, entityPosting{doc: prev, ef: int32(ef), dScore: dScore})
	}
	return dst
}

// forEach visits every posting: sealed blocks in doc order, then the
// tail in insertion order. A document appears at most once per list, so
// per-document accumulation order is unaffected by the region split.
func (l *termList) forEach(fn func(termPosting)) {
	pos, prev := 0, DocID(0)
	for _, bm := range l.blocks {
		for j := 0; j < bm.n; j++ {
			delta, n := binary.Uvarint(l.data[pos:])
			pos += n
			tf, n := binary.Uvarint(l.data[pos:])
			pos += n
			prev += DocID(delta)
			fn(termPosting{doc: prev, tf: int32(tf)})
		}
	}
	for _, p := range l.tail {
		fn(p)
	}
}

func (l *entityList) forEach(fn func(entityPosting)) {
	pos, prev := 0, DocID(0)
	for _, bm := range l.blocks {
		for j := 0; j < bm.n; j++ {
			delta, n := binary.Uvarint(l.data[pos:])
			pos += n
			ef, n := binary.Uvarint(l.data[pos:])
			pos += n
			dScore := float64FromBytes(l.data[pos:])
			pos += 8
			prev += DocID(delta)
			fn(entityPosting{doc: prev, ef: int32(ef), dScore: dScore})
		}
	}
	for _, p := range l.tailE {
		fn(p)
	}
}

// sorted returns every posting in ascending doc order — the canonical
// form the codec serializes.
func (l *termList) sorted() []termPosting {
	return sortTermPostings(l.decodeAll())
}

func (l *entityList) sorted() []entityPosting {
	return sortEntityPostings(l.decodeAll())
}

// newTermList builds a list from postings in arbitrary order, fully
// sealed into canonical blocks.
func newTermList(ps []termPosting) *termList {
	l := &termList{}
	for _, p := range ps {
		if w := float64(p.tf); w > l.maxW {
			l.maxW = w
		}
	}
	l.encode(sortTermPostings(append([]termPosting(nil), ps...)))
	return l
}

func newEntityList(ps []entityPosting) *entityList {
	l := &entityList{}
	for _, p := range ps {
		if w := entityWeight(p); w > l.maxW {
			l.maxW = w
		}
	}
	l.encode(sortEntityPostings(append([]entityPosting(nil), ps...)))
	return l
}

// sortTermPostings sorts postings by ascending doc id, in place.
func sortTermPostings(ps []termPosting) []termPosting {
	sort.Slice(ps, func(i, j int) bool { return ps[i].doc < ps[j].doc })
	return ps
}

// sortEntityPostings sorts postings by ascending doc id, in place.
func sortEntityPostings(ps []entityPosting) []entityPosting {
	sort.Slice(ps, func(i, j int) bool { return ps[i].doc < ps[j].doc })
	return ps
}

// appendFloat64 appends v's IEEE-754 bits, little endian.
func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// float64FromBytes reads the float64 appendFloat64 wrote.
func float64FromBytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
