package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"expertfind/internal/kb"
)

// Binary index segment format. All integers are unsigned varints
// unless noted; posting lists are delta-encoded on ascending DocIDs.
//
//	magic   "EFIX" (4 bytes)
//	version uvarint
//	numDocs uvarint, followed by delta-encoded sorted doc ids
//	numTerms uvarint, then per term:
//	    len(term) uvarint, term bytes,
//	    len(postings) uvarint, then per posting: docDelta uvarint, tf uvarint
//	numEntities uvarint, then per entity:
//	    entityID uvarint,
//	    len(postings) uvarint, then per posting:
//	        docDelta uvarint, ef uvarint, dScore float64 (8 bytes LE)
//	crc not included: the format targets trusted local storage; all
//	structural inconsistencies (truncation, garbage) surface as
//	decode errors.

const (
	codecMagic   = "EFIX"
	codecVersion = 1
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}

	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, codecVersion)

	// Documents.
	docs := make([]int64, 0, len(ix.docs))
	for d := range ix.docs {
		docs = append(docs, int64(d))
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	writeUvarint(cw, uint64(len(docs)))
	prev := int64(0)
	for i, d := range docs {
		delta := d
		if i > 0 {
			delta = d - prev
		}
		writeUvarint(cw, uint64(delta))
		prev = d
	}

	// Terms, sorted for determinism.
	terms := make([]string, 0, len(ix.terms))
	for t := range ix.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	writeUvarint(cw, uint64(len(terms)))
	for _, t := range terms {
		writeUvarint(cw, uint64(len(t)))
		if _, err := cw.Write([]byte(t)); err != nil {
			return cw.n, err
		}
		postings := sortedTermPostings(ix.terms[t])
		writeUvarint(cw, uint64(len(postings)))
		prevDoc := int64(0)
		for i, p := range postings {
			delta := int64(p.doc)
			if i > 0 {
				delta = int64(p.doc) - prevDoc
			}
			writeUvarint(cw, uint64(delta))
			writeUvarint(cw, uint64(p.tf))
			prevDoc = int64(p.doc)
		}
	}

	// Entities, sorted by ID.
	ents := make([]int64, 0, len(ix.entities))
	for e := range ix.entities {
		ents = append(ents, int64(e))
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })
	writeUvarint(cw, uint64(len(ents)))
	var f8 [8]byte
	for _, e := range ents {
		writeUvarint(cw, uint64(e))
		postings := sortedEntityPostings(ix.entities[kb.EntityID(e)])
		writeUvarint(cw, uint64(len(postings)))
		prevDoc := int64(0)
		for i, p := range postings {
			delta := int64(p.doc)
			if i > 0 {
				delta = int64(p.doc) - prevDoc
			}
			writeUvarint(cw, uint64(delta))
			writeUvarint(cw, uint64(p.ef))
			binary.LittleEndian.PutUint64(f8[:], math.Float64bits(p.dScore))
			if _, err := cw.Write(f8[:]); err != nil {
				return cw.n, err
			}
			prevDoc = int64(p.doc)
		}
	}

	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index previously written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic[:]) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading version: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}

	ix := New()

	nDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading doc count: %w", err)
	}
	if nDocs > 1<<31 {
		return nil, fmt.Errorf("index: implausible doc count %d", nDocs)
	}
	prev := int64(0)
	for i := uint64(0); i < nDocs; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading doc %d: %w", i, err)
		}
		d := prev
		if i > 0 {
			d = prev + int64(delta)
		} else {
			d = int64(delta)
		}
		ix.docs[DocID(d)] = struct{}{}
		prev = d
	}

	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if nTerms > 1<<31 {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	for i := uint64(0); i < nTerms; i++ {
		tlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d length: %w", i, err)
		}
		if tlen > 1<<16 {
			return nil, fmt.Errorf("index: implausible term length %d", tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: reading term %d: %w", i, err)
		}
		nPost, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading postings of %q: %w", buf, err)
		}
		if nPost > nDocs {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", buf, nPost, nDocs)
		}
		postings := make([]termPosting, nPost)
		prevDoc := int64(0)
		for j := range postings {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting %d of %q: %w", j, buf, err)
			}
			d := int64(delta)
			if j > 0 {
				d = prevDoc + int64(delta)
			}
			tf, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: tf of posting %d of %q: %w", j, buf, err)
			}
			if _, ok := ix.docs[DocID(d)]; !ok {
				return nil, fmt.Errorf("index: term %q references unknown doc %d", buf, d)
			}
			postings[j] = termPosting{doc: DocID(d), tf: int32(tf)}
			prevDoc = d
		}
		ix.terms[string(buf)] = postings
	}

	nEnts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading entity count: %w", err)
	}
	if nEnts > 1<<31 {
		return nil, fmt.Errorf("index: implausible entity count %d", nEnts)
	}
	var f8 [8]byte
	for i := uint64(0); i < nEnts; i++ {
		eid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading entity %d id: %w", i, err)
		}
		nPost, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading postings of entity %d: %w", eid, err)
		}
		if nPost > nDocs {
			return nil, fmt.Errorf("index: entity %d has %d postings for %d docs", eid, nPost, nDocs)
		}
		postings := make([]entityPosting, nPost)
		prevDoc := int64(0)
		for j := range postings {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting %d of entity %d: %w", j, eid, err)
			}
			d := int64(delta)
			if j > 0 {
				d = prevDoc + int64(delta)
			}
			ef, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: ef of posting %d of entity %d: %w", j, eid, err)
			}
			if _, err := io.ReadFull(br, f8[:]); err != nil {
				return nil, fmt.Errorf("index: dScore of posting %d of entity %d: %w", j, eid, err)
			}
			dScore := math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
			if math.IsNaN(dScore) || dScore < 0 || dScore > 1 {
				return nil, fmt.Errorf("index: entity %d posting %d has dScore %v outside [0,1]", eid, j, dScore)
			}
			if _, ok := ix.docs[DocID(d)]; !ok {
				return nil, fmt.Errorf("index: entity %d references unknown doc %d", eid, d)
			}
			postings[j] = entityPosting{doc: DocID(d), ef: int32(ef), dScore: dScore}
			prevDoc = d
		}
		ix.entities[kb.EntityID(eid)] = postings
	}
	return ix, nil
}

func sortedTermPostings(ps []termPosting) []termPosting {
	out := append([]termPosting(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i].doc < out[j].doc })
	return out
}

func sortedEntityPostings(ps []entityPosting) []entityPosting {
	out := append([]entityPosting(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i].doc < out[j].doc })
	return out
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w *countWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
