package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"expertfind/internal/kb"
)

// Binary index segment format. All integers are unsigned varints
// unless noted; posting lists are delta-encoded on ascending DocIDs.
//
// Version 2 serializes the blocked posting layout directly, so a
// loaded segment carries the skip entries the top-k pruner needs
// without re-encoding:
//
//	magic   "EFIX" (4 bytes)
//	version uvarint (2)
//	numDocs uvarint, followed by delta-encoded sorted doc ids
//	numTerms uvarint, then per term (lexicographic):
//	    len(term) uvarint, term bytes,
//	    count uvarint (total postings), nBlocks uvarint, per block:
//	        n uvarint, maxDocDelta uvarint (block maxDoc minus the
//	        previous block's, absolute for the first), maxTF uvarint
//	        (block bound), byteLen uvarint, then the raw block bytes
//	        (per posting: docDelta uvarint, tf uvarint)
//	numEntities uvarint, then per entity (ascending id):
//	    entityID uvarint,
//	    count uvarint, nBlocks uvarint, per block:
//	        n, maxDocDelta, maxW float64 (8 bytes LE, block bound),
//	        byteLen, then the raw block bytes (per posting:
//	        docDelta uvarint, ef uvarint, dScore float64 8 bytes LE)
//	crc not included: the format targets trusted local storage; all
//	structural inconsistencies (truncation, garbage, skip metadata
//	disagreeing with the postings it summarizes) surface as decode
//	errors.
//
// Blocks are canonical — every block holds exactly blockSize postings
// except the last — and the writer re-blocks from fully sorted
// postings, so two indexes over the same documents serialize
// byte-identically regardless of build order or shard layout. The
// reader still accepts version 1 (flat delta-encoded postings, no
// skip entries) and rebuilds the blocks itself.

const (
	codecMagic   = "EFIX"
	codecVersion = 2
)

// canonical returns the list in canonical sealed form (no tail,
// blocks re-encoded from fully sorted postings) — the form WriteTo
// serializes. Lists with an empty tail are already canonical.
func (l *termList) canonical() *termList {
	if len(l.tail) == 0 {
		return l
	}
	c := &termList{maxW: l.maxW}
	c.encode(l.sorted())
	return c
}

func (l *entityList) canonical() *entityList {
	if len(l.tailE) == 0 {
		return l
	}
	c := &entityList{maxW: l.maxW}
	c.encode(l.sorted())
	return c
}

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}

	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, codecVersion)

	// Documents.
	docs := make([]int64, 0, len(ix.docs))
	for d := range ix.docs {
		docs = append(docs, int64(d))
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	writeUvarint(cw, uint64(len(docs)))
	prev := int64(0)
	for i, d := range docs {
		delta := d
		if i > 0 {
			delta = d - prev
		}
		writeUvarint(cw, uint64(delta))
		prev = d
	}

	// Terms, sorted for determinism.
	terms := make([]string, 0, len(ix.terms))
	for t := range ix.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	writeUvarint(cw, uint64(len(terms)))
	for _, t := range terms {
		writeUvarint(cw, uint64(len(t)))
		if _, err := cw.Write([]byte(t)); err != nil {
			return cw.n, err
		}
		if err := writeTermListBody(cw, ix.terms[t].canonical()); err != nil {
			return cw.n, err
		}
	}

	// Entities, sorted by ID.
	ents := make([]int64, 0, len(ix.entities))
	for e := range ix.entities {
		ents = append(ents, int64(e))
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })
	writeUvarint(cw, uint64(len(ents)))
	for _, e := range ents {
		writeUvarint(cw, uint64(e))
		if err := writeEntityListBody(cw, ix.entities[kb.EntityID(e)].canonical()); err != nil {
			return cw.n, err
		}
	}

	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index previously written with WriteTo.
// Both the current blocked format (version 2) and the original flat
// format (version 1) are accepted.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic[:]) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading version: %w", err)
	}
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}

	ix := New()

	nDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading doc count: %w", err)
	}
	if nDocs > 1<<31 {
		return nil, fmt.Errorf("index: implausible doc count %d", nDocs)
	}
	prev := int64(0)
	for i := uint64(0); i < nDocs; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading doc %d: %w", i, err)
		}
		d := int64(delta)
		if i > 0 {
			d = prev + int64(delta)
		}
		ix.docs[DocID(d)] = struct{}{}
		prev = d
	}

	if version == 1 {
		return readV1Lists(br, ix, nDocs)
	}
	return readV2Lists(br, ix, nDocs)
}

// readV2Lists decodes the blocked term and entity sections. Skip
// metadata is load-bearing for pruning correctness, so every declared
// block bound is recomputed from the decoded postings and must match
// exactly.
func readV2Lists(br *bufio.Reader, ix *Index, nDocs uint64) (*Index, error) {
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if nTerms > 1<<31 {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	for i := uint64(0); i < nTerms; i++ {
		tlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d length: %w", i, err)
		}
		if tlen > 1<<16 {
			return nil, fmt.Errorf("index: implausible term length %d", tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: reading term %d: %w", i, err)
		}
		l, err := readTermBlocks(br, ix, nDocs, string(buf))
		if err != nil {
			return nil, err
		}
		ix.terms[string(buf)] = l
	}

	nEnts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading entity count: %w", err)
	}
	if nEnts > 1<<31 {
		return nil, fmt.Errorf("index: implausible entity count %d", nEnts)
	}
	for i := uint64(0); i < nEnts; i++ {
		eid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading entity %d id: %w", i, err)
		}
		l, err := readEntityBlocks(br, ix, nDocs, eid)
		if err != nil {
			return nil, err
		}
		ix.entities[kb.EntityID(eid)] = l
	}
	return ix, nil
}

// byteScanner is the reader the v2 block decoders consume: buffered
// byte and bulk reads. *bufio.Reader satisfies it; the segment opener
// wraps one to track the logical byte offset of each posting list.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// readListHeader reads and sanity-checks a v2 list's count and block
// count against the canonical blocking invariant.
func readListHeader(br byteScanner, nDocs uint64, what string) (count, nBlocks int, err error) {
	c, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("index: reading postings count of %s: %w", what, err)
	}
	if c > nDocs {
		return 0, 0, fmt.Errorf("index: %s has %d postings for %d docs", what, c, nDocs)
	}
	nb, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("index: reading block count of %s: %w", what, err)
	}
	want := (c + blockSize - 1) / blockSize
	if nb != want {
		return 0, 0, fmt.Errorf("index: %s has %d blocks for %d postings (want %d)", what, nb, c, want)
	}
	return int(c), int(nb), nil
}

func readTermBlocks(br byteScanner, ix *Index, nDocs uint64, term string) (*termList, error) {
	what := fmt.Sprintf("term %q", term)
	count, nBlocks, err := readListHeader(br, nDocs, what)
	if err != nil {
		return nil, err
	}
	l := &termList{count: count}
	remaining := count
	prevDoc := int64(-1)
	base := DocID(0)
	for b := 0; b < nBlocks; b++ {
		n, maxDocDelta, err := readBlockMeta(br, what, b)
		if err != nil {
			return nil, err
		}
		declMaxW, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading block %d bound of %s: %w", b, what, err)
		}
		data, err := readBlockData(br, what, b)
		if err != nil {
			return nil, err
		}
		wantN := blockSize
		if b == nBlocks-1 {
			wantN = remaining
		}
		if n != wantN {
			return nil, fmt.Errorf("index: block %d of %s holds %d postings, want %d", b, what, n, wantN)
		}
		remaining -= n

		// Decode and verify the block against its declared metadata.
		bm := blockMeta{off: len(l.data), n: n}
		pos, cur := 0, base
		for j := 0; j < n; j++ {
			delta, sz := binary.Uvarint(data[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("index: posting %d of block %d of %s: bad doc delta", j, b, what)
			}
			pos += sz
			tf, sz := binary.Uvarint(data[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("index: posting %d of block %d of %s: bad tf", j, b, what)
			}
			pos += sz
			cur += DocID(delta)
			if int64(cur) <= prevDoc {
				return nil, fmt.Errorf("index: %s doc ids not strictly ascending at block %d posting %d", what, b, j)
			}
			prevDoc = int64(cur)
			if _, ok := ix.docs[cur]; !ok {
				return nil, fmt.Errorf("index: %s references unknown doc %d", what, cur)
			}
			if w := float64(tf); w > bm.maxW {
				bm.maxW = w
			}
		}
		if pos != len(data) {
			return nil, fmt.Errorf("index: block %d of %s has %d trailing bytes", b, what, len(data)-pos)
		}
		bm.maxDoc = cur
		if bm.maxDoc != base+DocID(maxDocDelta) {
			return nil, fmt.Errorf("index: block %d of %s declares max doc %d, postings end at %d", b, what, base+DocID(maxDocDelta), bm.maxDoc)
		}
		if bm.maxW != float64(declMaxW) {
			return nil, fmt.Errorf("index: block %d of %s declares bound %d, postings max %g", b, what, declMaxW, bm.maxW)
		}
		if bm.maxW > l.maxW {
			l.maxW = bm.maxW
		}
		l.data = append(l.data, data...)
		l.blocks = append(l.blocks, bm)
		base = bm.maxDoc
	}
	return l, nil
}

func readEntityBlocks(br byteScanner, ix *Index, nDocs uint64, eid uint64) (*entityList, error) {
	what := fmt.Sprintf("entity %d", eid)
	count, nBlocks, err := readListHeader(br, nDocs, what)
	if err != nil {
		return nil, err
	}
	l := &entityList{count: count}
	remaining := count
	prevDoc := int64(-1)
	base := DocID(0)
	var f8 [8]byte
	for b := 0; b < nBlocks; b++ {
		n, maxDocDelta, err := readBlockMeta(br, what, b)
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, f8[:]); err != nil {
			return nil, fmt.Errorf("index: reading block %d bound of %s: %w", b, what, err)
		}
		declMaxW := math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
		data, err := readBlockData(br, what, b)
		if err != nil {
			return nil, err
		}
		wantN := blockSize
		if b == nBlocks-1 {
			wantN = remaining
		}
		if n != wantN {
			return nil, fmt.Errorf("index: block %d of %s holds %d postings, want %d", b, what, n, wantN)
		}
		remaining -= n

		bm := blockMeta{off: len(l.data), n: n}
		pos, cur := 0, base
		for j := 0; j < n; j++ {
			delta, sz := binary.Uvarint(data[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("index: posting %d of block %d of %s: bad doc delta", j, b, what)
			}
			pos += sz
			ef, sz := binary.Uvarint(data[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("index: posting %d of block %d of %s: bad ef", j, b, what)
			}
			pos += sz
			if pos+8 > len(data) {
				return nil, fmt.Errorf("index: posting %d of block %d of %s: truncated dScore", j, b, what)
			}
			dScore := float64FromBytes(data[pos:])
			pos += 8
			if math.IsNaN(dScore) || dScore < 0 || dScore > 1 {
				return nil, fmt.Errorf("index: %s posting %d has dScore %v outside [0,1]", what, j, dScore)
			}
			cur += DocID(delta)
			if int64(cur) <= prevDoc {
				return nil, fmt.Errorf("index: %s doc ids not strictly ascending at block %d posting %d", what, b, j)
			}
			prevDoc = int64(cur)
			if _, ok := ix.docs[cur]; !ok {
				return nil, fmt.Errorf("index: %s references unknown doc %d", what, cur)
			}
			if w := entityWeight(entityPosting{doc: cur, ef: int32(ef), dScore: dScore}); w > bm.maxW {
				bm.maxW = w
			}
		}
		if pos != len(data) {
			return nil, fmt.Errorf("index: block %d of %s has %d trailing bytes", b, what, len(data)-pos)
		}
		bm.maxDoc = cur
		if bm.maxDoc != base+DocID(maxDocDelta) {
			return nil, fmt.Errorf("index: block %d of %s declares max doc %d, postings end at %d", b, what, base+DocID(maxDocDelta), bm.maxDoc)
		}
		if bm.maxW != declMaxW {
			return nil, fmt.Errorf("index: block %d of %s declares bound %g, postings max %g", b, what, declMaxW, bm.maxW)
		}
		if bm.maxW > l.maxW {
			l.maxW = bm.maxW
		}
		l.data = append(l.data, data...)
		l.blocks = append(l.blocks, bm)
		base = bm.maxDoc
	}
	return l, nil
}

// readBlockMeta reads the leading (n, maxDocDelta) pair of a block's
// skip entry.
func readBlockMeta(br byteScanner, what string, b int) (n int, maxDocDelta uint64, err error) {
	nn, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("index: reading block %d size of %s: %w", b, what, err)
	}
	if nn > blockSize {
		return 0, 0, fmt.Errorf("index: block %d of %s oversized (%d postings)", b, what, nn)
	}
	maxDocDelta, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("index: reading block %d max doc of %s: %w", b, what, err)
	}
	if maxDocDelta > 1<<31 {
		return 0, 0, fmt.Errorf("index: block %d of %s has implausible max doc delta %d", b, what, maxDocDelta)
	}
	return int(nn), maxDocDelta, nil
}

// readBlockData reads a block's declared byte length and payload.
func readBlockData(br byteScanner, what string, b int) ([]byte, error) {
	byteLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading block %d byte length of %s: %w", b, what, err)
	}
	// A block holds at most blockSize postings of at most
	// (2 varints + float64) ≈ 28 bytes each.
	if byteLen > blockSize*32 {
		return nil, fmt.Errorf("index: block %d of %s has implausible byte length %d", b, what, byteLen)
	}
	data := make([]byte, byteLen)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("index: reading block %d of %s: %w", b, what, err)
	}
	return data, nil
}

// readV1Lists decodes the original flat posting sections and rebuilds
// the blocked in-memory layout.
func readV1Lists(br *bufio.Reader, ix *Index, nDocs uint64) (*Index, error) {
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if nTerms > 1<<31 {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	for i := uint64(0); i < nTerms; i++ {
		tlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d length: %w", i, err)
		}
		if tlen > 1<<16 {
			return nil, fmt.Errorf("index: implausible term length %d", tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: reading term %d: %w", i, err)
		}
		nPost, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading postings of %q: %w", buf, err)
		}
		if nPost > nDocs {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", buf, nPost, nDocs)
		}
		postings := make([]termPosting, nPost)
		prevDoc := int64(0)
		for j := range postings {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting %d of %q: %w", j, buf, err)
			}
			d := int64(delta)
			if j > 0 {
				d = prevDoc + int64(delta)
			}
			tf, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: tf of posting %d of %q: %w", j, buf, err)
			}
			if _, ok := ix.docs[DocID(d)]; !ok {
				return nil, fmt.Errorf("index: term %q references unknown doc %d", buf, d)
			}
			postings[j] = termPosting{doc: DocID(d), tf: int32(tf)}
			prevDoc = d
		}
		ix.terms[string(buf)] = newTermList(postings)
	}

	nEnts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading entity count: %w", err)
	}
	if nEnts > 1<<31 {
		return nil, fmt.Errorf("index: implausible entity count %d", nEnts)
	}
	var f8 [8]byte
	for i := uint64(0); i < nEnts; i++ {
		eid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading entity %d id: %w", i, err)
		}
		nPost, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading postings of entity %d: %w", eid, err)
		}
		if nPost > nDocs {
			return nil, fmt.Errorf("index: entity %d has %d postings for %d docs", eid, nPost, nDocs)
		}
		postings := make([]entityPosting, nPost)
		prevDoc := int64(0)
		for j := range postings {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting %d of entity %d: %w", j, eid, err)
			}
			d := int64(delta)
			if j > 0 {
				d = prevDoc + int64(delta)
			}
			ef, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: ef of posting %d of entity %d: %w", j, eid, err)
			}
			if _, err := io.ReadFull(br, f8[:]); err != nil {
				return nil, fmt.Errorf("index: dScore of posting %d of entity %d: %w", j, eid, err)
			}
			dScore := math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
			if math.IsNaN(dScore) || dScore < 0 || dScore > 1 {
				return nil, fmt.Errorf("index: entity %d posting %d has dScore %v outside [0,1]", eid, j, dScore)
			}
			if _, ok := ix.docs[DocID(d)]; !ok {
				return nil, fmt.Errorf("index: entity %d references unknown doc %d", eid, d)
			}
			postings[j] = entityPosting{doc: DocID(d), ef: int32(ef), dScore: dScore}
			prevDoc = d
		}
		ix.entities[kb.EntityID(eid)] = newEntityList(postings)
	}
	return ix, nil
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w *countWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
