package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
)

// Streaming segment merge. writeMerged serializes the union of several
// index components — in-memory indexes and/or on-disk segments, each
// with a set of dropped (tombstoned) documents — into one v2 codec
// file without ever materializing the merged index: only one posting
// list is resident at a time. The output is canonical, so merging any
// partition of a document set produces the byte-identical file a
// monolithic Index over the same live documents would write.

// mergeSource is the read view of one index component for a streaming
// merge: doc ids and dictionary entries in canonical order, posting
// lists materialized one at a time with dropped documents already
// filtered out.
type mergeSource interface {
	// liveDocs returns the component's non-dropped doc ids, ascending.
	liveDocs() []int64
	// termNames returns the dictionary in lexicographic order.
	termNames() []string
	// termPostings returns the term's live postings in ascending doc
	// order (empty when every posting is dropped).
	termPostings(t string) []termPosting
	// entityIDs returns the entity dictionary in ascending id order.
	entityIDs() []int64
	// entityPostings returns the entity's live postings in ascending
	// doc order.
	entityPostings(e kb.EntityID) []entityPosting
}

// indexMergeSource adapts an in-memory Index (a memtable or a frozen
// segment awaiting its disk file) to mergeSource. drop marks
// tombstoned documents to filter out; it may be nil.
type indexMergeSource struct {
	ix   *Index
	drop map[DocID]analysis.Analyzed
}

func (s indexMergeSource) dropped(d DocID) bool {
	_, ok := s.drop[d]
	return ok
}

func (s indexMergeSource) liveDocs() []int64 {
	out := make([]int64, 0, len(s.ix.docs))
	for d := range s.ix.docs {
		if !s.dropped(d) {
			out = append(out, int64(d))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s indexMergeSource) termNames() []string {
	out := make([]string, 0, len(s.ix.terms))
	for t := range s.ix.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (s indexMergeSource) termPostings(t string) []termPosting {
	l := s.ix.terms[t]
	if l == nil {
		return nil
	}
	ps := l.sorted()
	if len(s.drop) == 0 {
		return ps
	}
	kept := ps[:0]
	for _, p := range ps {
		if !s.dropped(p.doc) {
			kept = append(kept, p)
		}
	}
	return kept
}

func (s indexMergeSource) entityIDs() []int64 {
	out := make([]int64, 0, len(s.ix.entities))
	for e := range s.ix.entities {
		out = append(out, int64(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s indexMergeSource) entityPostings(e kb.EntityID) []entityPosting {
	l := s.ix.entities[e]
	if l == nil {
		return nil
	}
	ps := l.sorted()
	if len(s.drop) == 0 {
		return ps
	}
	kept := ps[:0]
	for _, p := range ps {
		if !s.dropped(p.doc) {
			kept = append(kept, p)
		}
	}
	return kept
}

// writeTermListBody serializes one term list body — postings count,
// block count, and the blocks with their skip entries — exactly as
// Index.WriteTo lays it out. l must be canonical (sealed, no tail).
func writeTermListBody(cw *countWriter, l *termList) error {
	writeUvarint(cw, uint64(l.count))
	writeUvarint(cw, uint64(len(l.blocks)))
	prevMax := DocID(0)
	for i, bm := range l.blocks {
		writeUvarint(cw, uint64(bm.n))
		writeUvarint(cw, uint64(bm.maxDoc-prevMax))
		writeUvarint(cw, uint64(bm.maxW))
		data := l.data[bm.off:l.blockEnd(i)]
		writeUvarint(cw, uint64(len(data)))
		if _, err := cw.Write(data); err != nil {
			return err
		}
		prevMax = bm.maxDoc
	}
	return cw.err
}

// writeEntityListBody is writeTermListBody for an entity list; block
// bounds are float64 (8 bytes little endian) instead of uvarints.
func writeEntityListBody(cw *countWriter, l *entityList) error {
	writeUvarint(cw, uint64(l.count))
	writeUvarint(cw, uint64(len(l.blocks)))
	prevMax := DocID(0)
	var f8 [8]byte
	for i, bm := range l.blocks {
		writeUvarint(cw, uint64(bm.n))
		writeUvarint(cw, uint64(bm.maxDoc-prevMax))
		binary.LittleEndian.PutUint64(f8[:], math.Float64bits(bm.maxW))
		if _, err := cw.Write(f8[:]); err != nil {
			return err
		}
		data := l.data[bm.off:l.blockEnd(i)]
		writeUvarint(cw, uint64(len(data)))
		if _, err := cw.Write(data); err != nil {
			return err
		}
		prevMax = bm.maxDoc
	}
	return cw.err
}

// writeMerged streams the live union of srcs to w in the v2 codec
// format. The sources' live document sets must be disjoint (the store
// guarantees at most one live occurrence of any document). Dictionary
// sections are prefixed by their entry count, which is only known
// after tombstone filtering, so list bodies are staged in spill (an
// empty temp file, rewound and truncated in place) and copied behind
// the count; peak memory is one merged posting list.
func writeMerged(w io.Writer, spill *os.File, srcs []mergeSource) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}

	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, codecVersion)

	// Documents: per-source slices are sorted and pairwise disjoint.
	var docs []int64
	for _, s := range srcs {
		docs = append(docs, s.liveDocs()...)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	for i := 1; i < len(docs); i++ {
		if docs[i] == docs[i-1] {
			return cw.n, fmt.Errorf("index: merge sources share live doc %d", docs[i])
		}
	}
	writeUvarint(cw, uint64(len(docs)))
	prev := int64(0)
	for i, d := range docs {
		delta := d
		if i > 0 {
			delta = d - prev
		}
		writeUvarint(cw, uint64(delta))
		prev = d
	}

	// Terms.
	names := map[string]struct{}{}
	for _, s := range srcs {
		for _, t := range s.termNames() {
			names[t] = struct{}{}
		}
	}
	terms := make([]string, 0, len(names))
	for t := range names {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	kept, err := spillSection(spill, len(terms), func(sw *countWriter, i int) (bool, error) {
		t := terms[i]
		var ps []termPosting
		for _, s := range srcs {
			ps = append(ps, s.termPostings(t)...)
		}
		if len(ps) == 0 {
			return false, nil
		}
		writeUvarint(sw, uint64(len(t)))
		if _, err := sw.Write([]byte(t)); err != nil {
			return false, err
		}
		return true, writeTermListBody(sw, newTermList(ps))
	})
	if err != nil {
		return cw.n, err
	}
	writeUvarint(cw, uint64(kept))
	if err := copySpill(cw, spill); err != nil {
		return cw.n, err
	}

	// Entities.
	ids := map[int64]struct{}{}
	for _, s := range srcs {
		for _, e := range s.entityIDs() {
			ids[e] = struct{}{}
		}
	}
	ents := make([]int64, 0, len(ids))
	for e := range ids {
		ents = append(ents, e)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })

	kept, err = spillSection(spill, len(ents), func(sw *countWriter, i int) (bool, error) {
		e := kb.EntityID(ents[i])
		var ps []entityPosting
		for _, s := range srcs {
			ps = append(ps, s.entityPostings(e)...)
		}
		if len(ps) == 0 {
			return false, nil
		}
		writeUvarint(sw, uint64(ents[i]))
		return true, writeEntityListBody(sw, newEntityList(ps))
	})
	if err != nil {
		return cw.n, err
	}
	writeUvarint(cw, uint64(kept))
	if err := copySpill(cw, spill); err != nil {
		return cw.n, err
	}

	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// spillSection rewinds and truncates spill, then writes n dictionary
// entries through emit (which reports whether it wrote anything),
// returning how many entries survived.
func spillSection(spill *os.File, n int, emit func(sw *countWriter, i int) (bool, error)) (int, error) {
	if err := spill.Truncate(0); err != nil {
		return 0, err
	}
	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(spill)
	sw := &countWriter{w: bw}
	kept := 0
	for i := 0; i < n; i++ {
		wrote, err := emit(sw, i)
		if err != nil {
			return 0, err
		}
		if wrote {
			kept++
		}
	}
	if sw.err != nil {
		return 0, sw.err
	}
	return kept, bw.Flush()
}

// copySpill appends the staged section to the main writer.
func copySpill(cw *countWriter, spill *os.File) error {
	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := io.Copy(cw, spill); err != nil {
		return err
	}
	return cw.err
}
