// Package index implements the in-memory inverted index and the
// vector-space resource-matching model of the paper (§2.4, Eq. 1–2).
//
// Resources are represented both as bags of stemmed terms and as sets
// of disambiguated entities, in the same space as expertise needs.
// The relevance of a resource r for a need q is the weighted linear
// combination
//
//	score(q,r) = α · Σ_t tf(t,r)·irf(t)²
//	           + (1−α) · Σ_e ef(e,r)·eirf(e)²·we(e,r)
//
// where t ranges over the need's terms, e over the need's entities,
// tf/ef are term/entity frequencies in r, irf/eirf are inverse
// resource frequencies over the whole collection, and
// we(e,r) = 1 + dScore(e,r) injects the disambiguation confidence
// (Eq. 2).
package index

import (
	"io"
	"math"
	"sort"

	"expertfind/internal/analysis"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Query-path metrics: how many postings each Score call walks is the
// raw unit of matching work, what the later sharding/caching PRs must
// move. One atomic add per query keeps the hot loops untouched.
var (
	mQueries = telemetry.Default().Counter(
		"expertfind_index_queries_total",
		"Score calls evaluated against the index.")
	mPostings = telemetry.Default().Counter(
		"expertfind_index_postings_scored_total",
		"Term and entity postings accumulated across Score calls.")
	mMatches = telemetry.Default().Counter(
		"expertfind_index_matches_total",
		"Positively scored resources returned across Score calls.")
)

// DocID identifies an indexed resource.
type DocID = socialgraph.ResourceID

// Searcher is the query-side index API shared by the monolithic Index
// and the sharded variant: everything the expert-finding pipeline
// needs to weight, match and persist a collection.
type Searcher interface {
	Score(need analysis.Analyzed, alpha float64) []ScoredDoc
	// ScoreTopK is Score bounded to the k best-ranked documents:
	// exactly Score's ranking truncated to its first k entries, byte
	// for byte, but computed with MaxScore-style pruning that skips
	// documents provably unable to enter the top k. k <= 0 disables
	// the bound. accept, when non-nil, restricts scoring to accepted
	// documents (the finder passes reachability membership), so the
	// reference ranking is Score filtered by accept, then truncated.
	ScoreTopK(need analysis.Analyzed, alpha float64, k int, accept func(DocID) bool) []ScoredDoc
	NumDocs() int
	Has(id DocID) bool
	DocFreq(term string) int
	EntityFreq(e kb.EntityID) int
	IRF(term string) float64
	EIRF(e kb.EntityID) float64
	io.WriterTo
}

// ParallelSearcher is implemented by indexes whose scoring fans out
// over document shards on a bounded worker pool.
type ParallelSearcher interface {
	Searcher
	// ScoreWorkers is Score with an explicit bound on the number of
	// concurrent shard scorers: 0 selects the index's own default,
	// 1 forces fully sequential scoring.
	ScoreWorkers(need analysis.Analyzed, alpha float64, workers int) []ScoredDoc
	// ScoreTopKWorkers is ScoreTopK with the ScoreWorkers bound.
	ScoreTopKWorkers(need analysis.Analyzed, alpha float64, workers, k int, accept func(DocID) bool) []ScoredDoc
	// NumShards reports the shard count.
	NumShards() int
}

// StatsSearcher is implemented by indexes that can score under an
// externally supplied collection view (ScoreStats); both the
// monolithic and the sharded index qualify. The scatter serving layer
// requires it of a shard process's index.
type StatsSearcher interface {
	Searcher
	ScoreStats(need analysis.Analyzed, alpha float64, st CollectionStats) []ScoredDoc
	// ScoreStatsTopK is ScoreStats bounded to the k best-ranked
	// documents under the accept filter (see Searcher.ScoreTopK).
	ScoreStatsTopK(need analysis.Analyzed, alpha float64, st CollectionStats, k int, accept func(DocID) bool) []ScoredDoc
}

var (
	_ Searcher         = (*Index)(nil)
	_ ParallelSearcher = (*Sharded)(nil)
	_ StatsSearcher    = (*Index)(nil)
	_ StatsSearcher    = (*Sharded)(nil)
)

type termPosting struct {
	doc DocID
	tf  int32
}

type entityPosting struct {
	doc    DocID
	ef     int32
	dScore float64
}

// Index is an append-only inverted index over analyzed resources.
// Inverse resource frequencies reflect the collection at query time,
// so documents can be added at any moment. Index is not safe for
// concurrent mutation; concurrent Score calls are safe once building
// is done (posting lists seal themselves during Add/Merge, never
// during scoring).
//
// Posting lists are blocked: delta-encoded fixed-size blocks with
// per-block skip entries (max doc id, max weightless score) plus a
// small unsorted tail of recent additions — see blockpostings.go. The
// skip entries feed the ScoreTopK pruner.
type Index struct {
	terms    map[string]*termList
	entities map[kb.EntityID]*entityList
	docs     map[DocID]struct{}
}

// New returns an empty index.
func New() *Index {
	return &Index{
		terms:    make(map[string]*termList),
		entities: make(map[kb.EntityID]*entityList),
		docs:     make(map[DocID]struct{}),
	}
}

func (ix *Index) termList(t string) *termList {
	l := ix.terms[t]
	if l == nil {
		l = &termList{}
		ix.terms[t] = l
	}
	return l
}

func (ix *Index) entityList(e kb.EntityID) *entityList {
	l := ix.entities[e]
	if l == nil {
		l = &entityList{}
		ix.entities[e] = l
	}
	return l
}

// Add indexes an analyzed resource under id. Adding the same id twice
// is a programming error and panics.
func (ix *Index) Add(id DocID, a analysis.Analyzed) {
	if _, dup := ix.docs[id]; dup {
		panic("index: duplicate document")
	}
	ix.docs[id] = struct{}{}
	for t, tf := range a.Terms {
		ix.termList(t).add(termPosting{doc: id, tf: int32(tf)})
	}
	for e, st := range a.Entities {
		ix.entityList(e).add(entityPosting{doc: id, ef: int32(st.Freq), dScore: st.DScore})
	}
}

// Remove deletes a previously indexed resource. a must be the
// analyzed form the document was added under (analysis is
// deterministic, so callers either retain it or re-analyze the
// installed text). Every touched posting list is rebuilt into
// canonical sealed blocks with its maxima recomputed, and lists left
// empty are dropped from the maps entirely — the index is
// indistinguishable from one that never saw the document, so a
// delta-applied index serializes byte-identically to a cold rebuild.
// Removing an unknown document, or one whose postings are missing
// from a list, is a programming error and panics.
func (ix *Index) Remove(id DocID, a analysis.Analyzed) {
	if _, ok := ix.docs[id]; !ok {
		panic("index: removing unknown document")
	}
	delete(ix.docs, id)
	for t := range a.Terms {
		l := ix.terms[t]
		if l == nil {
			panic("index: removing posting from absent term list")
		}
		kept, found := dropTermPosting(l.decodeAll(), id)
		if !found {
			panic("index: term posting missing on remove")
		}
		if len(kept) == 0 {
			delete(ix.terms, t)
			continue
		}
		ix.terms[t] = newTermList(kept)
	}
	for e := range a.Entities {
		l := ix.entities[e]
		if l == nil {
			panic("index: removing posting from absent entity list")
		}
		kept, found := dropEntityPosting(l.decodeAll(), id)
		if !found {
			panic("index: entity posting missing on remove")
		}
		if len(kept) == 0 {
			delete(ix.entities, e)
			continue
		}
		ix.entities[e] = newEntityList(kept)
	}
}

// dropTermPosting filters doc id out of ps in place, reporting whether
// it was present.
func dropTermPosting(ps []termPosting, id DocID) ([]termPosting, bool) {
	kept, found := ps[:0], false
	for _, p := range ps {
		if p.doc == id {
			found = true
			continue
		}
		kept = append(kept, p)
	}
	return kept, found
}

func dropEntityPosting(ps []entityPosting, id DocID) ([]entityPosting, bool) {
	kept, found := ps[:0], false
	for _, p := range ps {
		if p.doc == id {
			found = true
			continue
		}
		kept = append(kept, p)
	}
	return kept, found
}

// Update replaces the indexed form of a document: old must be the
// analyzed form it was added under, new becomes its indexed form.
func (ix *Index) Update(id DocID, old, new analysis.Analyzed) {
	ix.Remove(id, old)
	ix.Add(id, new)
}

// Merge folds another index into this one. The document sets must be
// disjoint (each resource is analyzed exactly once); overlapping
// documents cause a panic like a duplicate Add would. Merging
// supports sharded corpus builds: analyze partitions independently,
// then merge the shards.
func (ix *Index) Merge(other *Index) {
	for d := range other.docs {
		if _, dup := ix.docs[d]; dup {
			panic("index: merging overlapping document sets")
		}
		ix.docs[d] = struct{}{}
	}
	for t, ol := range other.terms {
		l := ix.termList(t)
		ol.forEach(func(p termPosting) { l.add(p) })
	}
	for e, ol := range other.entities {
		l := ix.entityList(e)
		ol.forEach(func(p entityPosting) { l.add(p) })
	}
}

// NumDocs returns the number of indexed resources.
func (ix *Index) NumDocs() int { return len(ix.docs) }

// Has reports whether id is indexed.
func (ix *Index) Has(id DocID) bool {
	_, ok := ix.docs[id]
	return ok
}

// DocFreq returns the number of resources containing the term.
func (ix *Index) DocFreq(term string) int {
	if l := ix.terms[term]; l != nil {
		return l.count
	}
	return 0
}

// EntityFreq returns the number of resources mentioning the entity.
func (ix *Index) EntityFreq(e kb.EntityID) int {
	if l := ix.entities[e]; l != nil {
		return l.count
	}
	return 0
}

// irf is the inverse resource frequency formula, log(1 + N/df),
// shared by every stats provider so sequential and sharded scoring
// compute bit-identical weights.
func irf(numDocs, df int) float64 {
	return math.Log(1 + float64(numDocs)/float64(df))
}

// IRF returns the inverse resource frequency of a term over the
// current collection: log(1 + N/df). Unseen terms contribute nothing
// to matching, so their IRF is reported as 0.
func (ix *Index) IRF(term string) float64 {
	df := ix.DocFreq(term)
	if df == 0 {
		return 0
	}
	return irf(len(ix.docs), df)
}

// EIRF returns the inverse resource frequency of an entity.
func (ix *Index) EIRF(e kb.EntityID) float64 {
	df := ix.EntityFreq(e)
	if df == 0 {
		return 0
	}
	return irf(len(ix.docs), df)
}

// ScoredDoc is a resource with its relevance for a need.
type ScoredDoc struct {
	Doc   DocID
	Score float64
}

// CollectionStats is the collection-level view needed to weight a
// query: document count and per-term/per-entity resource frequencies.
// For a sharded index these are global (summed across shards), so the
// same need yields the same query plan regardless of shard count. The
// scatter-gather serving layer implements it with stats summed across
// shard processes, so a shard holding one slice of the corpus can
// still score with collection-global weights.
type CollectionStats interface {
	NumDocs() int
	DocFreq(term string) int
	EntityFreq(e kb.EntityID) int
}

// GlobalStats is a materialized CollectionStats: document count and
// per-dimension resource frequencies summed over a whole collection.
// The coordinator of the scatter-gather serving layer gathers one per
// query from its shard processes; scoring any shard slice under it
// reproduces the exact plan weights of a single-process index.
type GlobalStats struct {
	Docs     int
	TermDF   map[string]int
	EntityDF map[kb.EntityID]int
}

// NumDocs implements CollectionStats.
func (g GlobalStats) NumDocs() int { return g.Docs }

// DocFreq implements CollectionStats.
func (g GlobalStats) DocFreq(term string) int { return g.TermDF[term] }

// EntityFreq implements CollectionStats.
func (g GlobalStats) EntityFreq(e kb.EntityID) int { return g.EntityDF[e] }

// plannedTerm / plannedEntity carry one query dimension with its
// collection weight fully resolved (α·irf² resp. (1−α)·eirf²).
type plannedTerm struct {
	term string
	w    float64
}

type plannedEntity struct {
	e kb.EntityID
	w float64
}

// queryPlan is the deterministic, weight-resolved form of a need:
// terms in lexicographic order, entities in ascending ID order, with
// zero-weight dimensions dropped. Planning once and walking postings
// in plan order makes every Score evaluation accumulate each
// document's float64 score in the same addition order — byte-identical
// output across runs and across shard counts (each document lives in
// exactly one shard, so its addition chain never changes).
type queryPlan struct {
	terms    []plannedTerm
	entities []plannedEntity
}

func planQuery(need analysis.Analyzed, alpha float64, st CollectionStats) queryPlan {
	var plan queryPlan
	n := st.NumDocs()

	if alpha > 0 {
		terms := make([]string, 0, len(need.Terms))
		for t, qtf := range need.Terms {
			if qtf > 0 {
				terms = append(terms, t)
			}
		}
		sort.Strings(terms)
		for _, t := range terms {
			df := st.DocFreq(t)
			if df == 0 {
				continue
			}
			v := irf(n, df)
			plan.terms = append(plan.terms, plannedTerm{term: t, w: alpha * v * v})
		}
	}

	if alpha < 1 {
		ents := make([]kb.EntityID, 0, len(need.Entities))
		for e := range need.Entities {
			ents = append(ents, e)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })
		for _, e := range ents {
			df := st.EntityFreq(e)
			if df == 0 {
				continue
			}
			v := irf(n, df)
			plan.entities = append(plan.entities, plannedEntity{e: e, w: (1 - alpha) * v * v})
		}
	}
	return plan
}

// scorePlan walks this index's postings for an already-weighted plan
// and returns the positive matches ordered by descending score (ties
// broken by ascending DocID), plus the number of postings walked. The
// plan's weights may come from a larger collection than this index
// (the sharded path plans globally, scores per shard).
func (ix *Index) scorePlan(plan queryPlan) ([]ScoredDoc, int) {
	scores := make(map[DocID]float64)
	postings := 0

	for _, pt := range plan.terms {
		l := ix.terms[pt.term]
		if l == nil {
			continue
		}
		postings += l.count
		w := pt.w
		l.forEach(func(p termPosting) {
			scores[p.doc] += float64(p.tf) * w
		})
	}
	for _, pe := range plan.entities {
		l := ix.entities[pe.e]
		if l == nil {
			continue
		}
		postings += l.count
		w := pe.w
		l.forEach(func(p entityPosting) {
			// Eq. 2: we(e,r) = 1 + dScore when the entity was
			// recognized with positive confidence.
			we := 0.0
			if p.dScore > 0 {
				we = 1 + p.dScore
			}
			scores[p.doc] += float64(p.ef) * w * we
		})
	}

	out := make([]ScoredDoc, 0, len(scores))
	for d, s := range scores {
		if s > 0 {
			out = append(out, ScoredDoc{Doc: d, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return scoredLess(out[i], out[j]) })
	return out, postings
}

// scoredLess is the one ranking comparator: descending score, ties
// broken by ascending DocID. Document IDs are unique, so it is a total
// order and every sort/merge over it is deterministic.
func scoredLess(a, b ScoredDoc) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// Score evaluates Eq. (1) for every resource matching the analyzed
// need and returns the matches with positive score, ordered by
// descending score (ties broken by ascending DocID for determinism).
// Scores are accumulated in sorted term/entity order, so repeated
// calls return byte-identical results.
//
// alpha balances textual term matching (alpha = 1) against entity
// matching (alpha = 0); the paper settles on alpha = 0.6 (§3.3.2).
func (ix *Index) Score(need analysis.Analyzed, alpha float64) []ScoredDoc {
	return ix.ScoreStats(need, alpha, ix)
}

// ScoreStats is Score with the query planned against an explicit
// collection view instead of this index's own statistics. The scatter
// serving layer uses it to score one shard slice under global
// (cross-process) weights: with st equal to the stats of the full
// collection, per-document scores are bit-identical to scoring the
// whole collection in one process.
func (ix *Index) ScoreStats(need analysis.Analyzed, alpha float64, st CollectionStats) []ScoredDoc {
	out, postings := ix.scorePlan(planQuery(need, alpha, st))
	mQueries.Inc()
	mPostings.Add(float64(postings))
	mMatches.Add(float64(len(out)))
	return out
}
