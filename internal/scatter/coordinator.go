package scatter

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// ErrNoShards is returned when a query cannot reach any shard of the
// topology: there is nothing to degrade to, so the query fails.
var ErrNoShards = errors.New("scatter: no shards reachable")

// ErrNotBootstrapped is returned while the coordinator has not yet
// validated the topology against any shard's metadata.
var ErrNotBootstrapped = errors.New("scatter: topology not bootstrapped")

// Options configures a Coordinator. Zero values select the documented
// defaults.
type Options struct {
	// Shards are the shard base URLs; position i must be the process
	// serving shard i of len(Shards).
	Shards []string
	// ShardTimeout is the per-call deadline budget for one shard
	// request (each retry attempt gets a fresh budget). 0 selects 2s.
	ShardTimeout time.Duration
	// Retry bounds per-shard retries. A zero policy selects 3 attempts,
	// 25ms base backoff doubling to 250ms, half-width jitter.
	Retry resilience.RetryPolicy
	// Breaker is the per-shard circuit breaker policy. A zero policy
	// selects 3 consecutive failures and a 1s cooldown.
	Breaker resilience.BreakerPolicy
	// Hedge configures hedged second requests; see HedgePolicy.
	Hedge HedgePolicy
	// HTTPClient overrides the transport (tests inject
	// httptest-backed clients). Nil selects a dedicated client.
	HTTPClient *http.Client
	// HealthInterval paces the background health loop of Run. 0
	// selects 1s.
	HealthInterval time.Duration
	// Logger receives topology state changes as structured records;
	// nil silences them.
	Logger *slog.Logger
}

func (o Options) shardTimeout() time.Duration {
	if o.ShardTimeout > 0 {
		return o.ShardTimeout
	}
	return 2 * time.Second
}

func (o Options) retryPolicy() resilience.RetryPolicy {
	if o.Retry != (resilience.RetryPolicy{}) {
		return o.Retry
	}
	return resilience.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

func (o Options) breakerPolicy() resilience.BreakerPolicy {
	if o.Breaker != (resilience.BreakerPolicy{}) {
		return o.Breaker
	}
	return resilience.BreakerPolicy{Threshold: 3, Cooldown: time.Second}
}

func (o Options) httpClient() *http.Client {
	if o.HTTPClient != nil {
		return o.HTTPClient
	}
	return &http.Client{}
}

func (o Options) healthInterval() time.Duration {
	if o.HealthInterval > 0 {
		return o.HealthInterval
	}
	return time.Second
}

// Expert is one ranked expert of a merged result.
type Expert struct {
	Name                string
	Score               float64
	SupportingResources int
}

// Result is a merged scatter-gather answer. Degraded reports whether
// any shard was dropped from the query — the ranking then covers only
// the surviving shards' document slices.
type Result struct {
	Experts     []Expert
	ShardsDown  int
	ShardsTotal int
	Degraded    bool
}

// topology is the bootstrap state learned from shard metadata.
type topology struct {
	group string
	names map[socialgraph.UserID]string
}

// Coordinator fans queries out to the shard processes of a fixed
// topology and merges their replies into the single-process ranking.
// It holds no corpus: candidate names and the pool fingerprint are
// bootstrapped from shard metadata. Safe for concurrent use.
type Coordinator struct {
	opts    Options
	clients []*shardClient

	mu   sync.Mutex
	topo *topology

	healthMu sync.Mutex
	unready  map[int]bool // shards failing their last readiness probe
}

// New builds a coordinator over the topology in opts.Shards.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("scatter: no shard URLs configured")
	}
	c := &Coordinator{opts: opts, unready: make(map[int]bool)}
	for i, base := range opts.Shards {
		c.clients = append(c.clients, newShardClient(i, base, opts))
	}
	return c, nil
}

// GroupFingerprint hashes a candidate pool into the fingerprint that
// identifies a topology: every shard of one deployment serves the
// same pool, so coordinator and shards can detect a process serving a
// different corpus without comparing the pool itself.
func GroupFingerprint(cands []Candidate) string {
	h := fnv.New64a()
	for _, cd := range cands {
		fmt.Fprintf(h, "%d=%s\n", cd.ID, cd.Name)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Bootstrap fetches and validates shard metadata until the topology
// is known: every reachable shard must report its expected position
// and the topology size, and all fingerprints must agree. It needs
// only one reachable shard to learn the candidate pool; unreachable
// shards are validated lazily by the group echo on their first find
// reply. Idempotent and cheap once bootstrapped.
func (c *Coordinator) Bootstrap(ctx context.Context) error {
	c.mu.Lock()
	done := c.topo != nil
	c.mu.Unlock()
	if done {
		return nil
	}

	metas := make([]*Meta, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *shardClient) {
			defer wg.Done()
			m, err := cl.meta(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			metas[i] = &m
		}(i, cl)
	}
	wg.Wait()

	var topo *topology
	for i, m := range metas {
		if m == nil {
			continue
		}
		if m.ShardID != i || m.ShardCount != len(c.clients) {
			return fmt.Errorf("scatter: shard at %s reports position %d/%d, expected %d/%d",
				c.clients[i].base, m.ShardID, m.ShardCount, i, len(c.clients))
		}
		fp := GroupFingerprint(m.Candidates)
		if m.Group != fp {
			return fmt.Errorf("scatter: shard %d fingerprint %q does not match its candidate pool (%q)", i, m.Group, fp)
		}
		if topo == nil {
			topo = &topology{group: m.Group, names: make(map[socialgraph.UserID]string, len(m.Candidates))}
			for _, cd := range m.Candidates {
				topo.names[socialgraph.UserID(cd.ID)] = cd.Name
			}
		} else if m.Group != topo.group {
			return fmt.Errorf("scatter: shard %d serves candidate pool %q, shards before it %q", i, m.Group, topo.group)
		}
	}
	if topo == nil {
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("%w: %w", ErrNotBootstrapped, err)
			}
		}
		return ErrNotBootstrapped
	}

	c.mu.Lock()
	if c.topo == nil {
		c.topo = topo
	}
	c.mu.Unlock()
	return nil
}

// Find answers one expertise need over the shard topology. rawParams
// are the client's query parameters, forwarded verbatim so shards
// resolve exactly the options a single-process server would; p must
// be the coordinator-side resolution of the same parameters (it
// drives window truncation and Eq. (3) aggregation over the merge).
//
// Shards that fail either fan-out phase after the robustness stack is
// exhausted are dropped and the result is marked degraded; only a
// fully unreachable topology is an error.
func (c *Coordinator) Find(ctx context.Context, need string, rawParams url.Values, p core.Params) (*Result, error) {
	if err := c.Bootstrap(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	topo := c.topo
	c.mu.Unlock()
	tr := telemetry.TraceFrom(ctx)

	// Phase 1: gather every shard's local document frequencies for the
	// need's dimensions; their sum is the global collection view.
	gsp := tr.StartSpan("gather stats")
	type statsReply struct {
		stats Stats
		err   error
	}
	stats := make([]statsReply, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *shardClient) {
			defer wg.Done()
			sp := tr.StartChildSpan(gsp.ID(), "shard"+cl.label+" stats")
			s, err := cl.stats(telemetry.ContextWithSpan(ctx, sp), need)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			stats[i] = statsReply{stats: s, err: err}
		}(i, cl)
	}
	wg.Wait()
	gsp.End()

	live := make([]int, 0, len(c.clients))
	parts := make([]Stats, 0, len(c.clients))
	for i, r := range stats {
		if r.err == nil {
			live = append(live, i)
			parts = append(parts, r.stats)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("%w: %w", ErrNoShards, firstError(stats, func(r statsReply) error { return r.err }))
	}
	global := SumStats(parts...)
	wire := Stats{Docs: global.Docs, Terms: global.TermDF, Entities: global.EntityDF}

	// Phase 2: ship the global view back with the query; each surviving
	// shard scores its slice under it.
	fsp := tr.StartSpan("gather find")
	req := FindRequest{Need: need, Params: map[string][]string(rawParams), Stats: wire}
	type findReply struct {
		resp FindResponse
		err  error
	}
	finds := make([]findReply, len(live))
	for j, i := range live {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			cl := c.clients[i]
			sp := tr.StartChildSpan(fsp.ID(), "shard"+cl.label+" find")
			resp, err := cl.find(telemetry.ContextWithSpan(ctx, sp), req)
			if err != nil {
				sp.SetAttr("error", err.Error())
			} else {
				sp.SetAttr("matches", strconv.Itoa(len(resp.Matches)))
			}
			sp.End()
			finds[j] = findReply{resp: resp, err: err}
		}(j, i)
	}
	wg.Wait()
	fsp.End()

	lists := make([]mergeList, 0, len(live))
	down := len(c.clients) - len(live)
	for j, i := range live {
		if finds[j].err != nil {
			down++
			continue
		}
		ml, err := convertResponse(i, topo.group, finds[j].resp)
		if err != nil {
			return nil, err
		}
		lists = append(lists, ml)
	}
	if len(lists) == 0 {
		return nil, fmt.Errorf("%w: %w", ErrNoShards, firstError(finds, func(r findReply) error { return r.err }))
	}

	msp := tr.StartSpan("merge")
	merged, err := Merge(lists)
	if err != nil {
		msp.SetAttr("error", err.Error())
		msp.End()
		return nil, err
	}
	// Under a top-k bound every shard ships its local top k of the
	// reachable set; the global top k is a prefix of their merge.
	if k := p.TopK; k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	ranked := core.RankMerged(merged, p)
	msp.SetAttr("lists", strconv.Itoa(len(lists)))
	msp.SetAttr("experts", strconv.Itoa(len(ranked)))
	msp.End()
	res := &Result{
		Experts:     make([]Expert, len(ranked)),
		ShardsDown:  down,
		ShardsTotal: len(c.clients),
		Degraded:    down > 0,
	}
	for i, es := range ranked {
		name, ok := topo.names[es.User]
		if !ok {
			// A shard voted for a user outside the bootstrapped pool:
			// the topology is inconsistent, not merely degraded.
			return nil, &MalformedError{Err: fmt.Errorf("candidate %d not in bootstrapped pool", es.User)}
		}
		res.Experts[i] = Expert{Name: name, Score: es.Score, SupportingResources: es.Resources}
	}
	if res.Degraded {
		mDegradedQueries.Inc()
		tr.SetAttr("shards_down", strconv.Itoa(down))
		tr.Keep("degraded")
	}
	return res, nil
}

// firstError returns the first non-nil error of a reply slice.
func firstError[T any](rs []T, get func(T) error) error {
	for _, r := range rs {
		if err := get(r); err != nil {
			return err
		}
	}
	return errors.New("no shards")
}

// Health reports the topology state from the most recent readiness
// probes: shards up, topology size, and whether bootstrap completed.
// Run keeps it fresh; Probe refreshes it on demand.
func (c *Coordinator) Health() (up, total int, bootstrapped bool) {
	c.healthMu.Lock()
	downN := len(c.unready)
	c.healthMu.Unlock()
	c.mu.Lock()
	bootstrapped = c.topo != nil
	c.mu.Unlock()
	return len(c.clients) - downN, len(c.clients), bootstrapped
}

// Probe checks every shard's readiness endpoint in parallel and
// updates the health state (and the shards-down gauge).
func (c *Coordinator) Probe(ctx context.Context) (up, total int) {
	results := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *shardClient) {
			defer wg.Done()
			results[i] = cl.ready(ctx)
			// A successful readiness probe is out-of-band evidence the
			// shard is back: close its breaker so the first real query
			// after recovery doesn't fail fast into degraded mode for a
			// residual cooldown (the breaker trips during the outage and
			// again while a restarted shard rebuilds its slice).
			if results[i] == nil && cl.breaker.Open() {
				cl.breaker.Success()
			}
		}(i, cl)
	}
	wg.Wait()

	c.healthMu.Lock()
	for i, err := range results {
		was := c.unready[i]
		if err != nil {
			c.unready[i] = true
		} else {
			delete(c.unready, i)
		}
		if c.opts.Logger != nil && was != (err != nil) {
			if err != nil {
				c.opts.Logger.Warn("shard down",
					"shard", i, "base", c.clients[i].base, "err", err.Error())
			} else {
				c.opts.Logger.Info("shard recovered",
					"shard", i, "base", c.clients[i].base)
			}
		}
	}
	downN := len(c.unready)
	c.healthMu.Unlock()
	mShardsDown.Set(float64(downN))
	return len(c.clients) - downN, len(c.clients)
}

// Run drives the background health loop until ctx is cancelled:
// bootstrap retries while the topology is unknown, then periodic
// readiness probes keeping Health and the shards-down gauge fresh.
func (c *Coordinator) Run(ctx context.Context) {
	tick := time.NewTicker(c.opts.healthInterval())
	defer tick.Stop()
	for {
		if err := c.Bootstrap(ctx); err != nil && c.opts.Logger != nil && !errors.Is(err, ErrNotBootstrapped) {
			c.opts.Logger.Warn("bootstrap failed", "err", err.Error())
		}
		c.Probe(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// ShardBases lists the configured shard base URLs in topology order.
func (c *Coordinator) ShardBases() []string {
	out := make([]string, len(c.clients))
	for i, cl := range c.clients {
		out[i] = cl.base
	}
	return out
}

// UnreadyShards lists the shard ids failing their most recent
// readiness probe, ascending.
func (c *Coordinator) UnreadyShards() []int {
	c.healthMu.Lock()
	out := make([]int, 0, len(c.unready))
	for i := range c.unready {
		out = append(out, i)
	}
	c.healthMu.Unlock()
	sort.Ints(out)
	return out
}
