package scatter

import "expertfind/internal/telemetry"

// Fan-out metrics. Shard labels are the decimal shard id; phase is
// "meta", "stats" or "find".
var (
	mShardSeconds = telemetry.Default().HistogramVec(
		"expertfind_scatter_shard_request_seconds",
		"Wall time of coordinator→shard calls, retries and hedges included.",
		nil, "shard", "phase")
	mShardErrors = telemetry.Default().CounterVec(
		"expertfind_scatter_shard_errors_total",
		"Coordinator→shard calls that failed after retries (the shard is dropped from the query).",
		"shard", "phase")
	mRetries = telemetry.Default().CounterVec(
		"expertfind_scatter_retries_total",
		"Coordinator→shard attempt retries after transient failures.",
		"shard")
	mHedgesFired = telemetry.Default().CounterVec(
		"expertfind_scatter_hedges_fired_total",
		"Hedged second requests launched after a shard call outlived its latency-quantile trigger.",
		"shard")
	mHedgesWon = telemetry.Default().CounterVec(
		"expertfind_scatter_hedges_won_total",
		"Hedged requests that finished before the primary they backed up.",
		"shard")
	mBreakerOpen = telemetry.Default().GaugeVec(
		"expertfind_scatter_breaker_open",
		"Whether the per-shard circuit breaker is open (1) or closed (0).",
		"shard")
	mDegradedQueries = telemetry.Default().Counter(
		"expertfind_scatter_degraded_queries_total",
		"Queries answered from a partial topology (one or more shards dropped).")
	mShardsDown = telemetry.Default().Gauge(
		"expertfind_scatter_shards_down",
		"Shards failing their readiness probe, per the coordinator health loop.")
)
