package scatter

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"expertfind/internal/core"
	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

func m(doc int32, score float64) core.ShardMatch {
	return core.ShardMatch{Doc: index.DocID(doc), Score: score}
}

func docs(ms []core.ShardMatch) []int32 {
	out := make([]int32, len(ms))
	for i, mm := range ms {
		out[i] = int32(mm.Doc)
	}
	return out
}

func TestMergeInterleaves(t *testing.T) {
	lists := []mergeList{
		{shard: 0, matches: []core.ShardMatch{m(4, 9), m(1, 5), m(9, 5), m(3, 1)}},
		{shard: 1, matches: []core.ShardMatch{m(7, 8), m(2, 5), m(8, 2)}},
		{shard: 2, matches: []core.ShardMatch{m(5, 10)}},
	}
	got, err := Merge(lists)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{5, 4, 7, 1, 2, 9, 8, 3}
	if g := docs(got); len(g) != len(want) {
		t.Fatalf("merged %v, want %v", g, want)
	} else {
		for i := range want {
			if g[i] != want[i] {
				t.Fatalf("merged %v, want %v", g, want)
			}
		}
	}
}

func TestMergeEmptyLists(t *testing.T) {
	got, err := Merge([]mergeList{
		{shard: 0},
		{shard: 1, matches: []core.ShardMatch{m(2, 3), m(1, 1)}},
		{shard: 2, matches: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Doc != 2 || got[1].Doc != 1 {
		t.Fatalf("merged %v", docs(got))
	}

	got, err = Merge([]mergeList{{shard: 0}, {shard: 1}})
	if err != nil || len(got) != 0 {
		t.Fatalf("all-empty merge = %v, %v", docs(got), err)
	}
	got, err = Merge(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("no-list merge = %v, %v", docs(got), err)
	}
}

func TestMergeRejectsDuplicateDocs(t *testing.T) {
	_, err := Merge([]mergeList{
		{shard: 0, matches: []core.ShardMatch{m(4, 9), m(1, 5)}},
		{shard: 2, matches: []core.ShardMatch{m(7, 8), m(1, 3)}},
	})
	var mal *MalformedError
	if !errors.As(err, &mal) {
		t.Fatalf("err = %v, want MalformedError", err)
	}
	if mal.Shard != 2 {
		t.Errorf("blamed shard %d, want 2 (the later reporter)", mal.Shard)
	}
}

func TestMergeRejectsDuplicateWithinOneShard(t *testing.T) {
	// An intra-list duplicate is also an ordering violation: equal
	// (score, doc) pairs cannot be strictly ordered.
	_, err := Merge([]mergeList{
		{shard: 1, matches: []core.ShardMatch{m(4, 9), m(4, 9)}},
	})
	var mal *MalformedError
	if !errors.As(err, &mal) || mal.Shard != 1 {
		t.Fatalf("err = %v, want MalformedError from shard 1", err)
	}
}

func TestMergeRejectsUnsortedList(t *testing.T) {
	for name, list := range map[string][]core.ShardMatch{
		"score ascending": {m(1, 2), m(2, 5)},
		"doc descending":  {m(5, 3), m(2, 3)},
	} {
		_, err := Merge([]mergeList{{shard: 0, matches: list}})
		var mal *MalformedError
		if !errors.As(err, &mal) {
			t.Errorf("%s: err = %v, want MalformedError", name, err)
		}
	}
}

// TestMergeEqualsSortedConcat cross-checks the k-way merge against
// sorting the concatenation, over random disjoint sorted lists.
func TestMergeEqualsSortedConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		var all []core.ShardMatch
		lists := make([]mergeList, n)
		for d := int32(0); d < 40; d++ {
			if rng.Intn(3) == 0 {
				continue
			}
			mm := m(d, float64(rng.Intn(8))) // few distinct scores → many ties
			sh := int(d) % n
			lists[sh].matches = append(lists[sh].matches, mm)
			all = append(all, mm)
		}
		for i := range lists {
			lists[i].shard = i
			sort.Slice(lists[i].matches, func(a, b int) bool {
				return mergeLess(lists[i].matches[a], lists[i].matches[b])
			})
		}
		got, err := Merge(lists)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sort.Slice(all, func(a, b int) bool { return mergeLess(all[a], all[b]) })
		if len(got) != len(all) {
			t.Fatalf("trial %d: %d merged, want %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i].Doc != all[i].Doc || got[i].Score != all[i].Score {
				t.Fatalf("trial %d: position %d: got %v, want %v", trial, i, got[i], all[i])
			}
		}
	}
}

func TestConvertResponseValidates(t *testing.T) {
	resp := FindResponse{Group: "aaaa", Matches: []Match{{Doc: 3, Score: 2, Cands: [][2]int32{{10, 1}}}}}
	ml, err := convertResponse(1, "aaaa", resp)
	if err != nil {
		t.Fatal(err)
	}
	want := socialgraph.CandidateDistance{Candidate: 10, Distance: 1}
	if len(ml.matches) != 1 || ml.matches[0].Cands[0] != want {
		t.Fatalf("converted %+v", ml.matches)
	}

	if _, err := convertResponse(1, "bbbb", resp); err == nil {
		t.Error("group mismatch accepted")
	}
	bad := FindResponse{Group: "aaaa", Matches: []Match{{Doc: 3, Score: 2, Cands: [][2]int32{{10, 7}}}}}
	if _, err := convertResponse(1, "aaaa", bad); err == nil {
		t.Error("out-of-range distance accepted")
	}
}

func TestSumStats(t *testing.T) {
	g := SumStats(
		Stats{Docs: 10, Terms: map[string]int{"go": 3}, Entities: map[kb.EntityID]int{1: 2}},
		Stats{Docs: 5, Terms: map[string]int{"go": 1, "db": 2}},
	)
	if g.Docs != 15 || g.TermDF["go"] != 4 || g.TermDF["db"] != 2 || g.EntityDF[1] != 2 {
		t.Fatalf("summed %+v", g)
	}
}
