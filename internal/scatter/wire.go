// Package scatter implements scatter-gather serving: a coordinator
// that fans expert-finding queries out to shard processes, each
// owning one slice of the document space (index.ShardRoute), and
// k-way-merges their globally-weighted matches back into the exact
// ranking a single process would produce.
//
// A query runs in two fan-out phases. Phase one gathers each shard's
// local document frequencies for the need's dimensions; their sum is
// the global collection view, so shard slices score under the same
// plan weights as a monolithic index. Phase two ships that view back
// with the query; every shard scores its slice, restricts to
// resources reachable from the candidate pool, and returns matches
// annotated with candidate/distance evidence. The coordinator merges
// the sorted lists under the (score desc, doc asc) total order and
// aggregates Eq. (3) itself — it never loads a corpus.
//
// Every shard call runs under a robustness stack: a per-call deadline
// budget, bounded retries with backoff for transient failures, a
// hedged second request once the call outlives the shard's recent
// latency quantile, and a per-shard circuit breaker (half-open probes
// capped at one in flight). When shards are down the coordinator
// degrades instead of failing: it answers with the surviving shards'
// merged results, flags the response as degraded, and reports partial
// readiness — only a fully dead topology turns queries into errors.
package scatter

import (
	"fmt"
	"net/url"

	"expertfind/internal/core"
	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// Candidate pairs a candidate user id with their handle, so the
// coordinator can render merged rankings by name.
type Candidate struct {
	ID   int32  `json:"id"`
	Name string `json:"name"`
}

// Meta identifies one shard process: its place in the topology, the
// slice it serves and the candidate pool it ranks. The coordinator
// bootstraps from every shard's meta and refuses mismatched
// topologies (wrong shard id or count, diverging candidate pools).
type Meta struct {
	ShardID    int         `json:"shard_id"`
	ShardCount int         `json:"shard_count"`
	NumDocs    int         `json:"num_docs"`
	Group      string      `json:"group"`
	Candidates []Candidate `json:"candidates"`
}

// Stats is the wire form of one shard's local collection statistics
// for a need's dimensions (phase one), and — summed across shards —
// the global view shipped back with phase two.
type Stats struct {
	Docs     int                 `json:"docs"`
	Terms    map[string]int      `json:"terms,omitempty"`
	Entities map[kb.EntityID]int `json:"entities,omitempty"`
}

// StatsFromNeed converts a finder's local need statistics to the wire
// form.
func StatsFromNeed(st core.NeedStats) Stats {
	return Stats{Docs: st.Docs, Terms: st.TermDF, Entities: st.EntityDF}
}

// SumStats folds per-shard statistics into the global collection
// view used to plan the query.
func SumStats(parts ...Stats) index.GlobalStats {
	g := index.GlobalStats{
		TermDF:   make(map[string]int),
		EntityDF: make(map[kb.EntityID]int),
	}
	for _, p := range parts {
		g.Docs += p.Docs
		for t, df := range p.Terms {
			g.TermDF[t] += df
		}
		for e, df := range p.Entities {
			g.EntityDF[e] += df
		}
	}
	return g
}

// Global converts wire statistics (already summed) into the index's
// collection view.
func (s Stats) Global() index.GlobalStats {
	g := index.GlobalStats{Docs: s.Docs, TermDF: s.Terms, EntityDF: s.Entities}
	if g.TermDF == nil {
		g.TermDF = map[string]int{}
	}
	if g.EntityDF == nil {
		g.EntityDF = map[kb.EntityID]int{}
	}
	return g
}

// FindRequest is the phase-two payload: the need, the client's raw
// find parameters (forwarded verbatim so shards parse them exactly
// like a single-process server would), and the summed global
// statistics to plan under.
type FindRequest struct {
	Need   string              `json:"need"`
	Params map[string][]string `json:"params,omitempty"`
	Stats  Stats               `json:"stats"`
}

// ParamValues returns the forwarded parameters as url.Values.
func (r FindRequest) ParamValues() url.Values { return url.Values(r.Params) }

// Match is one relevant resource of a shard's reply: document, global
// Eq. (1) score, and the (candidate, distance) pairs it is reachable
// from, in the shard's deterministic reachability order.
type Match struct {
	Doc   int32      `json:"doc"`
	Score float64    `json:"score"`
	Cands [][2]int32 `json:"cands"`
}

// FindResponse is one shard's phase-two reply. Matches are sorted by
// (score desc, doc asc); Group echoes the shard's candidate-pool
// fingerprint so a coordinator can detect a shard serving a different
// corpus mid-topology.
type FindResponse struct {
	Group   string  `json:"group"`
	Matches []Match `json:"matches"`
}

// MatchesFromCore converts a shard finder's matches to the wire form.
func MatchesFromCore(in []core.ShardMatch) []Match {
	out := make([]Match, len(in))
	for i, m := range in {
		cands := make([][2]int32, len(m.Cands))
		for j, cd := range m.Cands {
			cands[j] = [2]int32{int32(cd.Candidate), int32(cd.Distance)}
		}
		out[i] = Match{Doc: int32(m.Doc), Score: m.Score, Cands: cands}
	}
	return out
}

// toCore converts one wire match back to the finder's form,
// validating the distance range (a malformed distance would index out
// of the wr weight table).
func (m Match) toCore() (core.ShardMatch, error) {
	cm := core.ShardMatch{
		Doc:   index.DocID(m.Doc),
		Score: m.Score,
		Cands: make([]socialgraph.CandidateDistance, len(m.Cands)),
	}
	for j, cd := range m.Cands {
		if cd[1] < 0 || cd[1] > 2 {
			return core.ShardMatch{}, fmt.Errorf("doc %d: distance %d outside [0,2]", m.Doc, cd[1])
		}
		cm.Cands[j] = socialgraph.CandidateDistance{
			Candidate: socialgraph.UserID(cd[0]),
			Distance:  int(cd[1]),
		}
	}
	return cm, nil
}
