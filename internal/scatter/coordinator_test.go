package scatter

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/resilience"
)

// fakeShard is a scripted shard process: fixed metadata, scripted
// stats and find replies, and per-phase failure toggles, so the
// coordinator's fan-out behavior is testable without building a
// corpus.
type fakeShard struct {
	id    int
	count int
	cands []Candidate
	group string // defaults to GroupFingerprint(cands)

	stats Stats
	find  func(req FindRequest) FindResponse

	failMeta  atomic.Bool
	failStats atomic.Bool
	failFind  atomic.Bool
	failReady atomic.Bool

	srv *httptest.Server
}

func (f *fakeShard) start(t *testing.T) {
	t.Helper()
	if f.group == "" {
		f.group = GroupFingerprint(f.cands)
	}
	mux := http.NewServeMux()
	down := func(w http.ResponseWriter, flag *atomic.Bool) bool {
		if flag.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return true
		}
		return false
	}
	mux.HandleFunc("GET /v1/shard/meta", func(w http.ResponseWriter, r *http.Request) {
		if down(w, &f.failMeta) {
			return
		}
		json.NewEncoder(w).Encode(Meta{
			ShardID: f.id, ShardCount: f.count, NumDocs: f.stats.Docs,
			Group: f.group, Candidates: f.cands,
		})
	})
	mux.HandleFunc("GET /v1/shard/stats", func(w http.ResponseWriter, r *http.Request) {
		if down(w, &f.failStats) {
			return
		}
		json.NewEncoder(w).Encode(f.stats)
	})
	mux.HandleFunc("POST /v1/shard/find", func(w http.ResponseWriter, r *http.Request) {
		if down(w, &f.failFind) {
			return
		}
		var req FindRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := FindResponse{Group: f.group}
		if f.find != nil {
			resp = f.find(req)
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if down(w, &f.failReady) {
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
}

var testCands = []Candidate{{ID: 1, Name: "ada"}, {ID: 2, Name: "bob"}, {ID: 3, Name: "cyd"}}

// newFakeTopology starts n scripted shards sharing one candidate pool
// and returns them with a coordinator configured for test-speed
// retries and no hedging.
func newFakeTopology(t *testing.T, n int, finds []func(FindRequest) FindResponse) ([]*fakeShard, *Coordinator) {
	t.Helper()
	shards := make([]*fakeShard, n)
	bases := make([]string, n)
	for i := range shards {
		shards[i] = &fakeShard{
			id: i, count: n, cands: testCands,
			stats: Stats{Docs: 10 * (i + 1), Terms: map[string]int{"go": i + 1}},
		}
		if finds != nil {
			shards[i].find = finds[i]
		}
		shards[i].start(t)
		bases[i] = shards[i].srv.URL
	}
	co, err := New(Options{
		Shards:       bases,
		ShardTimeout: 2 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Multiplier: 2},
		Breaker:      resilience.BreakerPolicy{Threshold: 100, Cooldown: time.Millisecond},
		Hedge:        HedgePolicy{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return shards, co
}

func TestBootstrapRejectsWrongPosition(t *testing.T) {
	shards, co := newFakeTopology(t, 2, nil)
	shards[1].id = 0 // lies about its position
	if err := co.Bootstrap(context.Background()); err == nil {
		t.Fatal("misplaced shard accepted")
	}
}

func TestBootstrapRejectsPoolMismatch(t *testing.T) {
	shards := make([]*fakeShard, 2)
	bases := make([]string, 2)
	for i := range shards {
		cands := testCands
		if i == 1 {
			cands = []Candidate{{ID: 9, Name: "eve"}}
		}
		shards[i] = &fakeShard{id: i, count: 2, cands: cands, stats: Stats{Docs: 1}}
		shards[i].start(t)
		bases[i] = shards[i].srv.URL
	}
	co, err := New(Options{Shards: bases, Hedge: HedgePolicy{Disable: true},
		Retry: resilience.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Bootstrap(context.Background()); err == nil {
		t.Fatal("diverging candidate pools accepted")
	}
}

func TestBootstrapToleratesDownShard(t *testing.T) {
	shards, co := newFakeTopology(t, 3, nil)
	shards[2].failMeta.Store(true)
	if err := co.Bootstrap(context.Background()); err != nil {
		t.Fatalf("bootstrap with 1/3 down: %v", err)
	}
}

// scriptedFind returns a find function serving fixed matches.
func scriptedFind(group string, matches ...Match) func(FindRequest) FindResponse {
	return func(FindRequest) FindResponse { return FindResponse{Group: group, Matches: matches} }
}

func TestFindMergesRanksAndNames(t *testing.T) {
	g := GroupFingerprint(testCands)
	_, co := newFakeTopology(t, 2, []func(FindRequest) FindResponse{
		scriptedFind(g,
			Match{Doc: 2, Score: 4, Cands: [][2]int32{{1, 0}}},
			Match{Doc: 4, Score: 2, Cands: [][2]int32{{1, 1}, {2, 0}}}),
		scriptedFind(g,
			Match{Doc: 3, Score: 3, Cands: [][2]int32{{3, 2}}}),
	})
	res, err := co.Find(context.Background(), "go", nil, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.ShardsDown != 0 || res.ShardsTotal != 2 {
		t.Fatalf("healthy topology reported %+v", res)
	}
	// ada: 4·w0 + 2·w1 = 5.5, bob: 2·w0 = 2, cyd: 3·w2 = 1.5
	want := []Expert{
		{Name: "ada", Score: 4*1.0 + 2*0.75, SupportingResources: 2},
		{Name: "bob", Score: 2, SupportingResources: 1},
		{Name: "cyd", Score: 3 * 0.5, SupportingResources: 1},
	}
	if len(res.Experts) != len(want) {
		t.Fatalf("experts = %+v", res.Experts)
	}
	for i, w := range want {
		if res.Experts[i] != w {
			t.Errorf("expert[%d] = %+v, want %+v", i, res.Experts[i], w)
		}
	}
}

func TestFindForwardsSummedStats(t *testing.T) {
	g := GroupFingerprint(testCands)
	var got atomic.Pointer[FindRequest]
	capture := func(req FindRequest) FindResponse {
		got.Store(&req)
		return FindResponse{Group: g}
	}
	_, co := newFakeTopology(t, 2, []func(FindRequest) FindResponse{capture, capture})
	if _, err := co.Find(context.Background(), "go", map[string][]string{"alpha": {"0.3"}}, core.Params{}); err != nil {
		t.Fatal(err)
	}
	req := got.Load()
	if req == nil {
		t.Fatal("shards never saw the find request")
	}
	// Topology stats: shard0 {Docs:10, go:1}, shard1 {Docs:20, go:2}.
	if req.Stats.Docs != 30 || req.Stats.Terms["go"] != 3 {
		t.Errorf("global stats = %+v, want summed Docs=30 go=3", req.Stats)
	}
	if v := req.ParamValues().Get("alpha"); v != "0.3" {
		t.Errorf("forwarded alpha = %q", v)
	}
	if req.Need != "go" {
		t.Errorf("forwarded need = %q", req.Need)
	}
}

// TestFindShardFailureOrderings drops every subset of a 3-shard
// topology — in each phase — and checks the degraded contract: any
// proper subset down yields a 200-style partial result flagged
// degraded, the full set down yields ErrNoShards.
func TestFindShardFailureOrderings(t *testing.T) {
	g := GroupFingerprint(testCands)
	subsets := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	for _, phase := range []string{"stats", "find"} {
		for _, downSet := range subsets {
			finds := make([]func(FindRequest) FindResponse, 3)
			for i := range finds {
				finds[i] = scriptedFind(g, Match{Doc: int32(i + 1), Score: float64(3 - i), Cands: [][2]int32{{1, 0}}})
			}
			shards, co := newFakeTopology(t, 3, finds)
			for _, i := range downSet {
				if phase == "stats" {
					shards[i].failStats.Store(true)
				} else {
					shards[i].failFind.Store(true)
				}
			}
			res, err := co.Find(context.Background(), "go", nil, core.Params{})
			if len(downSet) == 3 {
				if !errors.Is(err, ErrNoShards) {
					t.Errorf("phase %s, all down: err = %v, want ErrNoShards", phase, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("phase %s, down %v: %v", phase, downSet, err)
				continue
			}
			if !res.Degraded || res.ShardsDown != len(downSet) || res.ShardsTotal != 3 {
				t.Errorf("phase %s, down %v: result %+v", phase, downSet, res)
				continue
			}
			// Surviving shards' matches all hit candidate 1 with weight 1;
			// its support count equals the number of surviving shards.
			if len(res.Experts) != 1 || res.Experts[0].SupportingResources != 3-len(downSet) {
				t.Errorf("phase %s, down %v: experts %+v", phase, downSet, res.Experts)
			}
		}
	}
}

func TestFindRejectsDuplicateDocsAcrossShards(t *testing.T) {
	g := GroupFingerprint(testCands)
	_, co := newFakeTopology(t, 2, []func(FindRequest) FindResponse{
		scriptedFind(g, Match{Doc: 5, Score: 4, Cands: [][2]int32{{1, 0}}}),
		scriptedFind(g, Match{Doc: 5, Score: 2, Cands: [][2]int32{{2, 0}}}),
	})
	_, err := co.Find(context.Background(), "go", nil, core.Params{})
	var mal *MalformedError
	if !errors.As(err, &mal) {
		t.Fatalf("err = %v, want MalformedError (doc owned by two shards)", err)
	}
}

func TestFindRejectsForeignGroupReply(t *testing.T) {
	g := GroupFingerprint(testCands)
	_, co := newFakeTopology(t, 2, []func(FindRequest) FindResponse{
		scriptedFind(g, Match{Doc: 1, Score: 1, Cands: [][2]int32{{1, 0}}}),
		scriptedFind("deadbeefdeadbeef", Match{Doc: 2, Score: 1, Cands: [][2]int32{{1, 0}}}),
	})
	_, err := co.Find(context.Background(), "go", nil, core.Params{})
	var mal *MalformedError
	if !errors.As(err, &mal) || mal.Shard != 1 {
		t.Fatalf("err = %v, want MalformedError from shard 1", err)
	}
}

func TestFindRejectsUnknownCandidate(t *testing.T) {
	g := GroupFingerprint(testCands)
	_, co := newFakeTopology(t, 1, []func(FindRequest) FindResponse{
		scriptedFind(g, Match{Doc: 1, Score: 1, Cands: [][2]int32{{42, 0}}}),
	})
	_, err := co.Find(context.Background(), "go", nil, core.Params{})
	var mal *MalformedError
	if !errors.As(err, &mal) {
		t.Fatalf("err = %v, want MalformedError (vote outside pool)", err)
	}
}

func TestProbeAndHealth(t *testing.T) {
	shards, co := newFakeTopology(t, 3, nil)
	if up, total := co.Probe(context.Background()); up != 3 || total != 3 {
		t.Fatalf("healthy probe = %d/%d", up, total)
	}
	shards[1].failReady.Store(true)
	if up, _ := co.Probe(context.Background()); up != 2 {
		t.Fatalf("probe with shard 1 down: up = %d", up)
	}
	if ids := co.UnreadyShards(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("unready = %v", ids)
	}
	up, total, boot := co.Health()
	if up != 2 || total != 3 || boot {
		t.Fatalf("health = %d/%d boot=%v (bootstrap not yet run)", up, total, boot)
	}
	if err := co.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, boot := co.Health(); !boot {
		t.Fatal("bootstrap did not stick")
	}
}

// TestProbeClosesBreaker pins the out-of-band recovery path: after an
// outage trips a shard's breaker, a successful readiness probe closes
// it immediately, so the first query after recovery is whole instead
// of degraded for a residual cooldown.
func TestProbeClosesBreaker(t *testing.T) {
	g := GroupFingerprint(testCands)
	shards := make([]*fakeShard, 2)
	bases := make([]string, 2)
	for i := range shards {
		shards[i] = &fakeShard{
			id: i, count: 2, cands: testCands,
			stats: Stats{Docs: 10, Terms: map[string]int{"go": 1}},
			find:  scriptedFind(g, Match{Doc: int32(i), Score: 1, Cands: [][2]int32{{1, 0}}}),
		}
		shards[i].start(t)
		bases[i] = shards[i].srv.URL
	}
	co, err := New(Options{
		Shards:       bases,
		ShardTimeout: 2 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
		// The long cooldown is the point: nothing but the probe can
		// close the breaker within this test's lifetime.
		Breaker: resilience.BreakerPolicy{Threshold: 1, Cooldown: time.Hour},
		Hedge:   HedgePolicy{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}

	shards[1].failStats.Store(true)
	res, err := co.Find(context.Background(), "go", nil, core.Params{})
	if err != nil || !res.Degraded {
		t.Fatalf("outage find = %+v, %v; want degraded", res, err)
	}

	// Healed, but the breaker is open for another hour: still degraded.
	shards[1].failStats.Store(false)
	res, err = co.Find(context.Background(), "go", nil, core.Params{})
	if err != nil || !res.Degraded {
		t.Fatalf("pre-probe find = %+v, %v; want degraded (breaker open)", res, err)
	}

	if up, _ := co.Probe(context.Background()); up != 2 {
		t.Fatalf("probe after heal: up = %d, want 2", up)
	}
	res, err = co.Find(context.Background(), "go", nil, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("find still degraded after a successful readiness probe")
	}
}
