package scatter

import (
	"encoding/json"
	"testing"
	"time"

	"expertfind/internal/telemetry"
)

// assembleFixture builds a coordinator trace with two fan-out spans
// and two shard contributions: shard 0 healthy with a trace parented
// on span s1, shard 1 unreachable.
func assembleFixture() (telemetry.TraceSnapshot, []ShardTraces) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	coord := telemetry.TraceSnapshot{
		ID:         "rid-1",
		Name:       "GET /v1/find",
		Start:      start,
		DurationUS: 5000,
		Attrs:      map[string]string{"degraded": "true"},
		Spans: []telemetry.SpanSnapshot{
			{ID: "s1", Name: "shard 0 find", StartOffsetUS: 100, DurationUS: 3000},
			{ID: "s2", Parent: "s1", Name: "attempt", StartOffsetUS: 120, DurationUS: 2900},
		},
	}
	shards := []ShardTraces{
		{Shard: 0, Base: "http://h0", Traces: []telemetry.TraceSnapshot{{
			ID:         "rid-1",
			Name:       "POST /v1/shard/find",
			ParentSpan: "s1",
			Start:      start.Add(200 * time.Microsecond),
			DurationUS: 2500,
			Spans: []telemetry.SpanSnapshot{
				{ID: "s1", Name: "index_match", StartOffsetUS: 50, DurationUS: 2000},
			},
		}}},
		{Shard: 1, Base: "http://h1", Error: "connection refused"},
	}
	return coord, shards
}

func TestAssembleTrace(t *testing.T) {
	coord, shards := assembleFixture()
	asm := AssembleTrace(coord, shards)

	if asm.ID != "rid-1" || asm.Name != "GET /v1/find" {
		t.Fatalf("trace identity: got %q %q", asm.ID, asm.Name)
	}
	if asm.ShardProcesses != 1 {
		t.Fatalf("ShardProcesses = %d, want 1 (shard 1 errored)", asm.ShardProcesses)
	}
	if got := asm.ShardErrors["1"]; got != "connection refused" {
		t.Fatalf("ShardErrors[1] = %q", got)
	}

	byID := map[string]AssembledSpan{}
	for _, sp := range asm.Spans {
		byID[sp.ID] = sp
	}
	if len(byID) != len(asm.Spans) {
		t.Fatalf("duplicate span ids in %v", asm.Spans)
	}
	// Coordinator spans are process-qualified and keep their nesting.
	if sp := byID["coordinator/s2"]; sp.Parent != "coordinator/s1" || sp.Process != "coordinator" {
		t.Fatalf("coordinator/s2 = %+v", sp)
	}
	// The shard trace becomes a span parented on the coordinator span
	// named in its ParentSpan, offset by the cross-process start delta.
	root := byID["shard0/t0"]
	if root.Parent != "coordinator/s1" {
		t.Fatalf("shard root parent = %q, want coordinator/s1", root.Parent)
	}
	if root.StartOffsetUS != 200 {
		t.Fatalf("shard root offset = %d, want 200", root.StartOffsetUS)
	}
	// Inner shard spans nest under the root with shifted offsets.
	inner := byID["shard0/t0/s1"]
	if inner.Parent != "shard0/t0" || inner.StartOffsetUS != 250 || inner.Name != "index_match" {
		t.Fatalf("shard inner span = %+v", inner)
	}

	// Spans come out start-ordered.
	for i := 1; i < len(asm.Spans); i++ {
		if asm.Spans[i].StartOffsetUS < asm.Spans[i-1].StartOffsetUS {
			t.Fatalf("spans out of order at %d: %v", i, asm.Spans)
		}
	}
}

// Assembly is pure: the same inputs yield byte-identical JSON.
func TestAssembleTraceDeterministic(t *testing.T) {
	coord, shards := assembleFixture()
	a, err := json.Marshal(AssembleTrace(coord, shards))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(AssembleTrace(coord, shards))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("assembly not deterministic:\n%s\n%s", a, b)
	}
}

func TestAssembleTraceEmptyShards(t *testing.T) {
	coord, _ := assembleFixture()
	asm := AssembleTrace(coord, []ShardTraces{{Shard: 0, Base: "http://h0"}})
	if asm.ShardProcesses != 0 {
		t.Fatalf("ShardProcesses = %d, want 0 for a shard with no traces", asm.ShardProcesses)
	}
	if len(asm.ShardErrors) != 0 {
		t.Fatalf("unexpected shard errors: %v", asm.ShardErrors)
	}
	if len(asm.Spans) != len(coord.Spans) {
		t.Fatalf("got %d spans, want the coordinator's %d", len(asm.Spans), len(coord.Spans))
	}
}
