package scatter

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/resilience"
	"expertfind/internal/telemetry"
)

// HedgePolicy configures hedged second requests: when a shard call
// outlives the shard's recent latency quantile, an identical backup
// request is launched and the first reply wins. Hedging bounds tail
// latency without multiplying steady-state load — the trigger fires
// only for calls already slower than (almost) all recent ones.
type HedgePolicy struct {
	// Disable turns hedging off.
	Disable bool
	// Quantile of the shard's recent latencies that arms the hedge
	// timer. 0 selects 0.95.
	Quantile float64
	// MinDelay and MaxDelay clamp the computed trigger, so a very fast
	// shard cannot arm hedges in the noise floor and a very slow one
	// cannot push the trigger past the call deadline. 0 selects 2ms and
	// 250ms.
	MinDelay time.Duration
	MaxDelay time.Duration
	// InitialDelay is the fixed trigger used until MinSamples
	// latencies have been observed. 0 selects 50ms.
	InitialDelay time.Duration
	// MinSamples is how many latencies the quantile needs before it
	// replaces InitialDelay. 0 selects 8.
	MinSamples int
}

func (p HedgePolicy) withDefaults() HedgePolicy {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		p.Quantile = 0.95
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.InitialDelay <= 0 {
		p.InitialDelay = 50 * time.Millisecond
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 8
	}
	return p
}

// latencyWindow is a bounded ring of recent call latencies; its
// quantile drives the hedge trigger.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	n       int
}

func newLatencyWindow(capacity int) *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, capacity)}
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
}

// quantile returns the q-quantile of the window, or false until the
// window holds at least min samples.
func (w *latencyWindow) quantile(q float64, min int) (time.Duration, bool) {
	w.mu.Lock()
	sorted := make([]time.Duration, w.n)
	copy(sorted, w.samples[:w.n])
	w.mu.Unlock()
	if len(sorted) < min {
		return 0, false
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(q*float64(len(sorted)-1))], true
}

// httpError is a non-2xx shard reply. 5xx replies are transient (the
// shard may be mid-restart) and retryable; 4xx replies mean the
// request itself is wrong and retrying cannot help.
type httpError struct {
	status int
	phase  string
	shard  int
}

func (e *httpError) Error() string {
	return fmt.Sprintf("scatter: shard %d %s: HTTP %d", e.shard, e.phase, e.status)
}

func (e *httpError) Retryable() bool { return e.status >= 500 }

// shardClient wraps every call to one shard process in the
// robustness stack: per-call deadline, circuit breaker, bounded
// retries with backoff, and latency-quantile hedging.
type shardClient struct {
	id    int
	label string // decimal id, the metric label
	base  string
	http  *http.Client

	timeout time.Duration
	breaker *resilience.Breaker
	retry   resilience.Retryer
	hedge   HedgePolicy
	lat     *latencyWindow
}

func newShardClient(id int, base string, opts Options) *shardClient {
	c := &shardClient{
		id:      id,
		label:   strconv.Itoa(id),
		base:    base,
		http:    opts.httpClient(),
		timeout: opts.shardTimeout(),
		breaker: resilience.NewBreaker(opts.breakerPolicy(), nil),
		hedge:   opts.Hedge.withDefaults(),
		lat:     newLatencyWindow(64),
	}
	c.breaker.OnStateChange = func(open bool) {
		v := 0.0
		if open {
			v = 1
		}
		mBreakerOpen.With(c.label).Set(v)
	}
	c.retry = resilience.Retryer{
		Policy: opts.retryPolicy(),
		OnRetry: func(int, error, time.Duration) {
			mRetries.With(c.label).Inc()
		},
	}
	return c
}

// call performs one logical shard call — breaker gate, retry loop,
// hedged attempts — and decodes the winning JSON reply into out.
func (c *shardClient) call(ctx context.Context, phase, method, path string, query url.Values, body, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("scatter: shard %d %s: encode: %w", c.id, phase, err)
		}
		payload = b
	}

	t0 := time.Now()
	err := c.retry.Do(func() error {
		if err := ctx.Err(); err != nil {
			return resilience.Permanent(err)
		}
		if !c.breaker.Allow() {
			return resilience.Permanent(fmt.Errorf("scatter: shard %d %s: %w", c.id, phase, resilience.ErrOpen))
		}
		raw, err := c.attempt(ctx, phase, method, u, payload)
		if err != nil {
			c.breaker.Failure()
			return err
		}
		c.breaker.Success()
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				return resilience.Permanent(&MalformedError{Shard: c.id, Err: fmt.Errorf("%s reply: %w", phase, err)})
			}
		}
		return nil
	})
	mShardSeconds.With(c.label, phase).ObserveSince(t0)
	if err != nil {
		mShardErrors.With(c.label, phase).Inc()
	}
	return err
}

// attempt runs one request attempt under the per-call deadline,
// launching a hedged duplicate if the primary outlives the latency
// trigger. The first success wins; the loser's reply is discarded.
// Each launch records its own child span under the call's span and
// stamps that span's id onto the outbound request, so the shard's
// trace nests under the exact attempt that carried it.
func (c *shardClient) attempt(ctx context.Context, phase, method, u string, payload []byte) ([]byte, error) {
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	tr := telemetry.TraceFrom(ctx)
	callSpan := telemetry.SpanFrom(ctx)

	type reply struct {
		raw    []byte
		err    error
		hedged bool
		t0     time.Time
	}
	ch := make(chan reply, 2)
	launch := func(hedged bool) {
		name := "attempt"
		if hedged {
			name = "hedge"
		}
		asp := tr.StartChildSpan(callSpan.ID(), name)
		t0 := time.Now()
		raw, err := c.roundTrip(telemetry.ContextWithSpan(cctx, asp), phase, method, u, payload)
		if err != nil {
			asp.SetAttr("error", err.Error())
		}
		asp.End()
		ch <- reply{raw: raw, err: err, hedged: hedged, t0: t0}
	}
	go launch(false)

	var hedgeC <-chan time.Time
	if delay, ok := c.hedgeDelay(); ok {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	pending := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				c.lat.observe(time.Since(r.t0))
				if r.hedged {
					mHedgesWon.With(c.label).Inc()
				}
				return r.raw, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			mHedgesFired.With(c.label).Inc()
			pending++
			go launch(true)
		}
	}
}

// hedgeDelay returns the current hedge trigger, or false when hedging
// is disabled.
func (c *shardClient) hedgeDelay() (time.Duration, bool) {
	if c.hedge.Disable {
		return 0, false
	}
	d, ok := c.lat.quantile(c.hedge.Quantile, c.hedge.MinSamples)
	if !ok {
		return c.hedge.InitialDelay, true
	}
	if d < c.hedge.MinDelay {
		d = c.hedge.MinDelay
	}
	if d > c.hedge.MaxDelay {
		d = c.hedge.MaxDelay
	}
	return d, true
}

// roundTrip performs one HTTP exchange, propagating the query's
// request id so the shard joins the coordinator's trace.
func (c *shardClient) roundTrip(ctx context.Context, phase, method, u string, payload []byte) ([]byte, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := telemetry.TraceFrom(ctx).ID(); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if spanID := telemetry.SpanFrom(ctx).ID(); spanID != "" {
		req.Header.Set(telemetry.SpanHeader, spanID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err // transport failure: transient, retryable
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		herr := &httpError{status: resp.StatusCode, phase: phase, shard: c.id}
		if herr.Retryable() {
			return nil, herr
		}
		return nil, resilience.Permanent(herr)
	}
	return raw, nil
}

// maxReplyBytes bounds a shard reply so a corrupted shard cannot make
// the coordinator buffer unbounded data.
const maxReplyBytes = 64 << 20

func (c *shardClient) meta(ctx context.Context) (Meta, error) {
	var m Meta
	err := c.call(ctx, "meta", http.MethodGet, "/v1/shard/meta", nil, nil, &m)
	return m, err
}

func (c *shardClient) stats(ctx context.Context, need string) (Stats, error) {
	var s Stats
	err := c.call(ctx, "stats", http.MethodGet, "/v1/shard/stats", url.Values{"q": {need}}, nil, &s)
	return s, err
}

func (c *shardClient) find(ctx context.Context, req FindRequest) (FindResponse, error) {
	var r FindResponse
	err := c.call(ctx, "find", http.MethodPost, "/v1/shard/find", nil, req, &r)
	return r, err
}

// ready probes the shard's readiness endpoint outside the breaker and
// retry stack: health probes must observe a down shard, not be
// shielded from it.
func (c *shardClient) ready(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpError{status: resp.StatusCode, phase: "ready", shard: c.id}
	}
	return nil
}
