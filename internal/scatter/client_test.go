package scatter

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/resilience"
)

// fastOpts returns client options with millisecond-scale backoffs so
// the robustness paths run in test time.
func fastOpts(base string) Options {
	return Options{
		Shards:       []string{base},
		ShardTimeout: 2 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2},
		Breaker:      resilience.BreakerPolicy{Threshold: 10, Cooldown: time.Minute},
		Hedge:        HedgePolicy{Disable: true},
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"docs":7}`))
	}))
	defer srv.Close()

	c := newShardClient(0, srv.URL, fastOpts(srv.URL))
	st, err := c.stats(context.Background(), "go")
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != 7 {
		t.Errorf("stats = %+v", st)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (two 500s retried)", n)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := newShardClient(0, srv.URL, fastOpts(srv.URL))
	if _, err := c.stats(context.Background(), "go"); err == nil {
		t.Fatal("400 reported as success")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d calls, want 1 (4xx is permanent)", n)
	}
}

func TestClientBreakerFailsFast(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOpts(srv.URL)
	opts.Retry = resilience.RetryPolicy{MaxAttempts: 1}
	opts.Breaker = resilience.BreakerPolicy{Threshold: 2, Cooldown: time.Minute}
	c := newShardClient(0, srv.URL, opts)

	for i := 0; i < 2; i++ { // trip the breaker (threshold 2)
		if _, err := c.stats(context.Background(), "go"); err == nil {
			t.Fatal("500 reported as success")
		}
	}
	seen := calls.Load()
	_, err := c.stats(context.Background(), "go")
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if calls.Load() != seen {
		t.Error("open breaker still let the request through")
	}
}

func TestClientHedgesSlowPrimary(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // primary stalls until the test ends
		}
		w.Write([]byte(`{"docs":1}`))
	}))
	defer srv.Close()
	defer close(release)

	opts := fastOpts(srv.URL)
	opts.Hedge = HedgePolicy{InitialDelay: 10 * time.Millisecond}
	c := newShardClient(0, srv.URL, opts)

	fired0, won0 := mHedgesFired.With("0").Value(), mHedgesWon.With("0").Value()
	t0 := time.Now()
	st, err := c.stats(context.Background(), "go")
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if d := time.Since(t0); d > time.Second {
		t.Errorf("hedged call took %v; the backup should have answered fast", d)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d calls, want 2 (primary + hedge)", n)
	}
	if got := mHedgesFired.With("0").Value() - fired0; got != 1 {
		t.Errorf("hedges fired delta = %v, want 1", got)
	}
	if got := mHedgesWon.With("0").Value() - won0; got != 1 {
		t.Errorf("hedges won delta = %v, want 1", got)
	}
}

func TestLatencyWindowQuantile(t *testing.T) {
	w := newLatencyWindow(8)
	if _, ok := w.quantile(0.95, 4); ok {
		t.Error("empty window reported a quantile")
	}
	for i := 1; i <= 8; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	q, ok := w.quantile(0.95, 4)
	if !ok || q < 6*time.Millisecond {
		t.Errorf("quantile = %v, %v", q, ok)
	}
	// The ring overwrites oldest-first: 8 more large samples shift it.
	for i := 0; i < 8; i++ {
		w.observe(time.Second)
	}
	if q, _ := w.quantile(0.5, 4); q != time.Second {
		t.Errorf("median after overwrite = %v, want 1s", q)
	}
}

func TestHedgeDelayClamps(t *testing.T) {
	opts := fastOpts("http://unused")
	opts.Hedge = HedgePolicy{MinDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond, MinSamples: 2, InitialDelay: 5 * time.Millisecond}
	c := newShardClient(0, "http://unused", opts)

	if d, ok := c.hedgeDelay(); !ok || d != 5*time.Millisecond {
		t.Errorf("cold hedge delay = %v, %v; want InitialDelay", d, ok)
	}
	c.lat.observe(time.Microsecond)
	c.lat.observe(time.Microsecond)
	if d, _ := c.hedgeDelay(); d != 10*time.Millisecond {
		t.Errorf("fast-shard delay = %v, want MinDelay clamp", d)
	}
	c.lat.observe(time.Minute)
	c.lat.observe(time.Minute)
	c.lat.observe(time.Minute)
	c.lat.observe(time.Minute)
	if d, _ := c.hedgeDelay(); d != 20*time.Millisecond {
		t.Errorf("slow-shard delay = %v, want MaxDelay clamp", d)
	}

	c.hedge.Disable = true
	if _, ok := c.hedgeDelay(); ok {
		t.Error("disabled hedging still armed")
	}
}
