package scatter

// Cross-process trace assembly. Each shard process retains span
// snapshots per request id (httpapi's /v1/shard/trace); the
// coordinator fetches them after an interesting query and stitches
// them under its own trace into one timeline. Span identity is
// qualified by process so parent references never collide:
// "coordinator/s3" is the coordinator's third span, "shard1/t0" is
// the root of shard 1's first trace for the request, "shard1/t0/s2"
// a span inside it. A shard trace's root attaches to the coordinator
// span named in its parent_span_id — the exact fan-out attempt
// (primary, hedge or retry) that carried the request, propagated via
// the X-Expertfind-Span header.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/telemetry"
)

// ShardTraces is one shard's contribution to an assembled timeline:
// every trace it retained for the request id (the stats and find
// phases each record one), or the fetch error.
type ShardTraces struct {
	Shard  int                       `json:"shard"`
	Base   string                    `json:"base"`
	Traces []telemetry.TraceSnapshot `json:"traces,omitempty"`
	Error  string                    `json:"error,omitempty"`
}

// AssembledSpan is one span of a stitched cross-process timeline.
// Offsets are relative to the coordinator trace's start; shard spans
// can be slightly negative under clock skew between processes.
type AssembledSpan struct {
	Process       string            `json:"process"`
	ID            string            `json:"span_id"`
	Parent        string            `json:"parent_span_id,omitempty"`
	Name          string            `json:"name"`
	StartOffsetUS int64             `json:"start_offset_us"`
	DurationUS    int64             `json:"duration_us"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// AssembledTrace is the stitched timeline of one distributed query:
// the coordinator's spans plus every shard's retained spans for the
// same request id, in one start-ordered list with cross-process
// parent references. Assembling the same inputs twice yields
// byte-identical JSON.
type AssembledTrace struct {
	ID             string            `json:"id"`
	Name           string            `json:"name"`
	Start          time.Time         `json:"start"`
	DurationUS     int64             `json:"duration_us"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	ShardProcesses int               `json:"shard_processes"`
	ShardErrors    map[string]string `json:"shard_errors,omitempty"`
	Spans          []AssembledSpan   `json:"spans"`
}

// trace fetches the shard's retained traces for one request id. Like
// readiness probes it bypasses the breaker and retry stack: trace
// retrieval is diagnostic traffic and must not consume the robustness
// budget of real queries (nor be shielded by it).
func (c *shardClient) trace(ctx context.Context, rid string) ([]telemetry.TraceSnapshot, error) {
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	u := c.base + "/v1/shard/trace?" + url.Values{"rid": {rid}}.Encode()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{status: resp.StatusCode, phase: "trace", shard: c.id}
	}
	var out []telemetry.TraceSnapshot
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("scatter: shard %d trace reply: %w", c.id, err)
	}
	return out, nil
}

// FetchShardTraces collects every shard's retained traces for one
// request id, in parallel. Unreachable shards report their error in
// the result instead of failing the fetch — a partially assembled
// timeline of a degraded query is exactly the artifact an operator
// needs.
func (c *Coordinator) FetchShardTraces(ctx context.Context, rid string) []ShardTraces {
	out := make([]ShardTraces, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *shardClient) {
			defer wg.Done()
			out[i] = ShardTraces{Shard: cl.id, Base: cl.base}
			traces, err := cl.trace(ctx, rid)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			out[i].Traces = traces
		}(i, cl)
	}
	wg.Wait()
	return out
}

// AssembleTrace stitches a coordinator trace and the shards'
// contributions into one timeline. Pure: same inputs, same output.
func AssembleTrace(coord telemetry.TraceSnapshot, shards []ShardTraces) AssembledTrace {
	asm := AssembledTrace{
		ID:         coord.ID,
		Name:       coord.Name,
		Start:      coord.Start,
		DurationUS: coord.DurationUS,
		Attrs:      coord.Attrs,
	}
	for _, sp := range coord.Spans {
		parent := ""
		if sp.Parent != "" {
			parent = "coordinator/" + sp.Parent
		}
		asm.Spans = append(asm.Spans, AssembledSpan{
			Process:       "coordinator",
			ID:            "coordinator/" + sp.ID,
			Parent:        parent,
			Name:          sp.Name,
			StartOffsetUS: sp.StartOffsetUS,
			DurationUS:    sp.DurationUS,
			Attrs:         sp.Attrs,
		})
	}
	for _, st := range shards {
		if st.Error != "" {
			if asm.ShardErrors == nil {
				asm.ShardErrors = make(map[string]string)
			}
			asm.ShardErrors[strconv.Itoa(st.Shard)] = st.Error
			continue
		}
		if len(st.Traces) == 0 {
			continue
		}
		asm.ShardProcesses++
		proc := fmt.Sprintf("shard%d", st.Shard)
		for ti, t := range st.Traces {
			prefix := fmt.Sprintf("%s/t%d", proc, ti)
			rootParent := ""
			if t.ParentSpan != "" {
				rootParent = "coordinator/" + t.ParentSpan
			}
			offset := t.Start.Sub(coord.Start).Microseconds()
			// The shard trace itself becomes a span, so the shard's
			// request handling shows up as a bar under the coordinator
			// attempt that carried it.
			asm.Spans = append(asm.Spans, AssembledSpan{
				Process:       proc,
				ID:            prefix,
				Parent:        rootParent,
				Name:          t.Name,
				StartOffsetUS: offset,
				DurationUS:    t.DurationUS,
				Attrs:         t.Attrs,
			})
			for _, sp := range t.Spans {
				parent := prefix
				if sp.Parent != "" {
					parent = prefix + "/" + sp.Parent
				}
				asm.Spans = append(asm.Spans, AssembledSpan{
					Process:       proc,
					ID:            prefix + "/" + sp.ID,
					Parent:        parent,
					Name:          sp.Name,
					StartOffsetUS: offset + sp.StartOffsetUS,
					DurationUS:    sp.DurationUS,
					Attrs:         sp.Attrs,
				})
			}
		}
	}
	sort.SliceStable(asm.Spans, func(i, j int) bool {
		a, b := asm.Spans[i], asm.Spans[j]
		if a.StartOffsetUS != b.StartOffsetUS {
			return a.StartOffsetUS < b.StartOffsetUS
		}
		if a.Process != b.Process {
			return a.Process < b.Process
		}
		return a.ID < b.ID
	})
	return asm
}
