package scatter

import (
	"fmt"

	"expertfind/internal/core"
	"expertfind/internal/index"
)

// MalformedError reports a shard reply that violates the merge
// contract (unsorted matches, duplicate documents across shards, or
// out-of-range distances). The coordinator surfaces it as a bad
// gateway rather than silently merging corrupt evidence.
type MalformedError struct {
	Shard int
	Err   error
}

// Error formats the offending shard and the contract violation.
func (e *MalformedError) Error() string {
	return fmt.Sprintf("scatter: malformed reply from shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the underlying violation for errors.Is/As.
func (e *MalformedError) Unwrap() error { return e.Err }

// mergeLess is the global ranking comparator (descending score, ties
// by ascending document id) — the same total order index.scoredLess
// imposes, so the merged list equals the single-process ranking.
func mergeLess(a, b core.ShardMatch) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// mergeList pairs one shard's converted matches with the shard id
// that produced them, for error attribution.
type mergeList struct {
	shard   int
	matches []core.ShardMatch
}

// Merge k-way merges per-shard match lists into the global ranking.
// Each input list must already be sorted under the global total order
// (descending score, ascending doc) and the lists must be disjoint —
// every document lives on exactly one shard. Violations mean a buggy
// or lying shard, and Merge rejects them with a MalformedError
// instead of producing a plausible-looking wrong ranking: an unsorted
// list would merge out of order, and a duplicated document would
// double-count its score in Eq. (3).
func Merge(lists []mergeList) ([]core.ShardMatch, error) {
	total := 0
	for _, l := range lists {
		for i := 1; i < len(l.matches); i++ {
			if !mergeLess(l.matches[i-1], l.matches[i]) {
				return nil, &MalformedError{Shard: l.shard, Err: fmt.Errorf(
					"matches not strictly ordered at position %d (doc %d then doc %d)",
					i, l.matches[i-1].Doc, l.matches[i].Doc)}
			}
		}
		total += len(l.matches)
	}

	out := make([]core.ShardMatch, 0, total)
	heads := make([]int, len(lists))
	seen := make(map[index.DocID]int, total)
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l.matches) {
				continue
			}
			if best == -1 || mergeLess(l.matches[heads[i]], lists[best].matches[heads[best]]) {
				best = i
			}
		}
		m := lists[best].matches[heads[best]]
		if prev, dup := seen[m.Doc]; dup {
			return nil, &MalformedError{Shard: lists[best].shard, Err: fmt.Errorf(
				"doc %d already reported by shard %d", m.Doc, prev)}
		}
		seen[m.Doc] = lists[best].shard
		out = append(out, m)
		heads[best]++
	}
	return out, nil
}

// convertResponse validates one shard's find reply (group fingerprint
// and per-match shape) and converts it to the finder's match form.
func convertResponse(shard int, group string, resp FindResponse) (mergeList, error) {
	if resp.Group != group {
		return mergeList{}, &MalformedError{Shard: shard, Err: fmt.Errorf(
			"candidate-pool fingerprint %q does not match topology %q", resp.Group, group)}
	}
	ml := mergeList{shard: shard, matches: make([]core.ShardMatch, len(resp.Matches))}
	for i, m := range resp.Matches {
		cm, err := m.toCore()
		if err != nil {
			return mergeList{}, &MalformedError{Shard: shard, Err: err}
		}
		ml.matches[i] = cm
	}
	return ml, nil
}
