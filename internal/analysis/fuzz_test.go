package analysis

import (
	"testing"
	"unicode/utf8"
)

// FuzzAnalyzeNeed feeds arbitrary byte strings through the full need
// analysis flow — language identification, text processing, entity
// annotation — and checks the structural invariants every Analyzed
// must satisfy. The seed corpus under testdata/fuzz covers realistic
// queries, markup, URLs, mixed scripts, and invalid UTF-8.
func FuzzAnalyzeNeed(f *testing.F) {
	seeds := []string{
		"",
		" ",
		"Which PHP function can I use in order to obtain the length of a string?",
		"Can you list some restaurants in Milan?",
		"php php php PHP pHp",
		"<b>bold</b> &amp; <a href=\"http://example.com/x?y=1\">link</a>",
		"check out http://example.com/page and https://other.example/path#frag",
		"¿Dónde puedo encontrar un buen restaurante en Madrid?",
		"九份有什麼好吃的小吃嗎",
		"naïve café déjà-vu résumé",
		"a\x00b\x01c",
		"\xff\xfe invalid utf8 \x80\x81",
		"    \t\n\r\n   ",
		"!!!???...,,,;;;:::",
		"🎸🎹 who plays keyboards in a rock band? 🥁",
		"The THE the tHe ThE",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	pipe := New(Options{})
	f.Fuzz(func(t *testing.T, need string) {
		a := pipe.AnalyzeNeed(need)

		// Length is the sum of term frequencies, always.
		sum := 0
		for term, n := range a.Terms {
			if term == "" {
				t.Errorf("empty term in Terms map for %q", need)
			}
			if n <= 0 {
				t.Errorf("term %q has non-positive frequency %d", term, n)
			}
			if !utf8.ValidString(term) {
				t.Errorf("term %q is not valid UTF-8 (input %q)", term, need)
			}
			sum += n
		}
		if sum != a.Length {
			t.Errorf("Length = %d, want Σtf = %d for %q", a.Length, sum, need)
		}

		for id, st := range a.Entities {
			if st.Freq <= 0 {
				t.Errorf("entity %v has non-positive frequency %d", id, st.Freq)
			}
			if st.DScore < 0 || st.DScore > 1 {
				t.Errorf("entity %v dScore %v outside [0,1]", id, st.DScore)
			}
		}

		// Analysis must be deterministic: the same need yields the
		// same vectors.
		b := pipe.AnalyzeNeed(need)
		if b.Length != a.Length || len(b.Terms) != len(a.Terms) || len(b.Entities) != len(a.Entities) {
			t.Errorf("AnalyzeNeed not deterministic for %q: (%d,%d,%d) vs (%d,%d,%d)",
				need, a.Length, len(a.Terms), len(a.Entities), b.Length, len(b.Terms), len(b.Entities))
		}
	})
}
