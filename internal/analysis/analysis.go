// Package analysis implements the resource / expertise-need analysis
// flow of the paper (Fig. 4): Resource Extraction → URL Content
// Extraction → Language Identification → Text Processing → Entity
// Recognition and Disambiguation.
//
// The analysis is symmetric: the same Pipeline processes both social
// resources and expertise needs, producing the term and entity vectors
// that the vector-space matching of §2.4 consumes.
package analysis

import (
	"expertfind/internal/annotator"
	"expertfind/internal/kb"
	"expertfind/internal/langid"
	"expertfind/internal/textproc"
	"expertfind/internal/webcontent"
)

// Options configures a Pipeline.
type Options struct {
	// Processor performs sanitization/tokenization/stop-word
	// removal/stemming. Nil selects textproc.Default.
	Processor *textproc.Processor
	// Annotator performs entity recognition and disambiguation. Nil
	// selects a default annotator over kb.Builtin().
	Annotator *annotator.Annotator
	// Web resolves URLs found in resources to extracted page content.
	// Nil disables URL enrichment (an ablation of §2.3's enrichment
	// step).
	Web *webcontent.Web
	// KeepAllLanguages disables the English-only filter. The paper
	// keeps only English resources (230k of 330k collected).
	KeepAllLanguages bool
}

// Pipeline analyzes texts into term/entity vectors.
type Pipeline struct {
	proc    *textproc.Processor
	ann     *annotator.Annotator
	web     *webcontent.Web
	keepAll bool
}

// New returns a Pipeline with the given options.
func New(opts Options) *Pipeline {
	p := &Pipeline{
		proc:    opts.Processor,
		ann:     opts.Annotator,
		web:     opts.Web,
		keepAll: opts.KeepAllLanguages,
	}
	if p.proc == nil {
		p.proc = textproc.Default
	}
	if p.ann == nil {
		p.ann = annotator.New(kb.Builtin(), annotator.Options{})
	}
	return p
}

// EntityStats aggregates the mentions of one entity within one text:
// ef(e,r) and the disambiguation confidence dScore(e,r) (the maximum
// over the mentions, feeding Eq. 2's we weight).
type EntityStats struct {
	Freq   int
	DScore float64
}

// Analyzed is the result of running the pipeline on one text.
type Analyzed struct {
	Lang     langid.Lang
	Terms    map[string]int              // stemmed term frequencies (tf)
	Entities map[kb.EntityID]EntityStats // per-entity ef and dScore
	// Length is the total number of terms (Σ tf), kept for statistics.
	Length int
}

// Analyze runs the full flow on a resource text with its URLs. It
// returns ok = false when the resource is discarded by the language
// filter (non-English text with the filter active).
//
// URL enrichment happens before language identification, as in the
// paper: the extracted page content both contributes expertise clues
// and sharpens the language signal of very short resources.
func (p *Pipeline) Analyze(text string, urls []string) (Analyzed, bool) {
	full := text
	if p.web != nil {
		for _, u := range urls {
			if extracted, ok := p.web.Extract(u); ok {
				full += "\n" + extracted
			}
		}
	}

	lang := langid.Identify(full)
	if !p.keepAll && lang != langid.English {
		return Analyzed{Lang: lang}, false
	}

	terms := p.proc.TermFreq(full)
	length := 0
	for _, n := range terms {
		length += n
	}

	entities := make(map[kb.EntityID]EntityStats)
	for _, ann := range p.ann.Annotate(full) {
		st := entities[ann.Entity.ID]
		st.Freq++
		if ann.DScore > st.DScore {
			st.DScore = ann.DScore
		}
		entities[ann.Entity.ID] = st
	}

	return Analyzed{Lang: lang, Terms: terms, Entities: entities, Length: length}, true
}

// AnalyzeNeed analyzes an expertise need (a natural-language query).
// Needs have no URLs and bypass the language filter: the caller
// formulated the query deliberately.
func (p *Pipeline) AnalyzeNeed(need string) Analyzed {
	lang := langid.Identify(need)
	terms := p.proc.TermFreq(need)
	length := 0
	for _, n := range terms {
		length += n
	}
	entities := make(map[kb.EntityID]EntityStats)
	for _, ann := range p.ann.Annotate(need) {
		st := entities[ann.Entity.ID]
		st.Freq++
		if ann.DScore > st.DScore {
			st.DScore = ann.DScore
		}
		entities[ann.Entity.ID] = st
	}
	return Analyzed{Lang: lang, Terms: terms, Entities: entities, Length: length}
}
