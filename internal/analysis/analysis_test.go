package analysis

import (
	"testing"

	"expertfind/internal/kb"
	"expertfind/internal/langid"
	"expertfind/internal/textproc"
	"expertfind/internal/webcontent"
)

func TestAnalyzeEnglishResource(t *testing.T) {
	p := New(Options{})
	a, ok := p.Analyze("Michael Phelps is the best! Great freestyle gold medal", nil)
	if !ok {
		t.Fatal("english resource filtered out")
	}
	if a.Lang != langid.English {
		t.Errorf("lang = %v", a.Lang)
	}
	if a.Terms["freestyl"] == 0 || a.Terms["medal"] == 0 {
		t.Errorf("terms missing: %v", a.Terms)
	}
	phelps, _ := kb.Builtin().EntityByLabel("Michael Phelps")
	st, ok := a.Entities[phelps.ID]
	if !ok || st.Freq < 1 || st.DScore <= 0 {
		t.Errorf("phelps entity stats = %+v (ok=%v)", st, ok)
	}
	if a.Length == 0 {
		t.Error("Length = 0")
	}
}

func TestAnalyzeLanguageFilter(t *testing.T) {
	p := New(Options{})
	italian := "oggi sono andato in piscina a fare allenamento di stile libero con gli amici"
	if _, ok := p.Analyze(italian, nil); ok {
		t.Error("italian resource passed the english-only filter")
	}
	p = New(Options{KeepAllLanguages: true})
	a, ok := p.Analyze(italian, nil)
	if !ok {
		t.Error("KeepAllLanguages still filtered the resource")
	}
	if a.Lang != langid.Italian {
		t.Errorf("lang = %v, want it", a.Lang)
	}
}

func TestAnalyzeURLEnrichment(t *testing.T) {
	web := webcontent.NewWeb()
	web.AddPage("https://news.example.com/copper",
		"Copper conductivity explained",
		"Copper is an excellent electrical conductor because of its free electrons and low resistance.")
	p := New(Options{Web: web})

	// Without the URL, the short post has no conductor mention.
	a, ok := p.Analyze("interesting read about this metal", nil)
	if !ok {
		t.Fatal("filtered")
	}
	if a.Terms["conductor"] != 0 {
		t.Fatal("unexpected conductor term without URL")
	}

	// With the URL, the page content is folded into the resource.
	a, ok = p.Analyze("interesting read about this metal", []string{"https://news.example.com/copper"})
	if !ok {
		t.Fatal("filtered")
	}
	if a.Terms["conductor"] == 0 || a.Terms["copper"] == 0 {
		t.Errorf("url content not folded in: %v", a.Terms)
	}
	cond, _ := kb.Builtin().EntityByLabel("Electrical conductor")
	if _, ok := a.Entities[cond.ID]; !ok {
		t.Errorf("conductor entity not annotated: %v", a.Entities)
	}
}

func TestAnalyzeUnknownURLIgnored(t *testing.T) {
	p := New(Options{Web: webcontent.NewWeb()})
	a, ok := p.Analyze("a perfectly normal english sentence about the weather outside", []string{"https://missing.example.com/x"})
	if !ok {
		t.Fatal("filtered")
	}
	if a.Terms["weather"] == 0 {
		t.Errorf("terms = %v", a.Terms)
	}
}

func TestAnalyzeNeed(t *testing.T) {
	p := New(Options{})
	a := p.AnalyzeNeed("Can you list some famous songs of Michael Jackson?")
	if a.Terms["song"] == 0 && a.Terms["famou"] == 0 {
		t.Errorf("need terms = %v", a.Terms)
	}
	mj, _ := kb.Builtin().EntityByLabel("Michael Jackson")
	if _, ok := a.Entities[mj.ID]; !ok {
		t.Errorf("need entities = %v", a.Entities)
	}
}

func TestAnalyzeNeedBypassesLanguageFilter(t *testing.T) {
	p := New(Options{})
	a := p.AnalyzeNeed("ristoranti milano centro")
	if len(a.Terms) == 0 {
		t.Error("non-english need produced no terms")
	}
}

func TestEntityFrequencyAggregation(t *testing.T) {
	p := New(Options{})
	a, ok := p.Analyze("phelps won again today, michael phelps is simply the greatest swimmer in the pool", nil)
	if !ok {
		t.Fatal("filtered")
	}
	phelps, _ := kb.Builtin().EntityByLabel("Michael Phelps")
	if st := a.Entities[phelps.ID]; st.Freq < 2 {
		t.Errorf("phelps freq = %d, want >= 2 (two mentions)", st.Freq)
	}
}

func TestCustomProcessor(t *testing.T) {
	p := New(Options{Processor: textproc.New(textproc.Options{DisableStemming: true})})
	a, ok := p.Analyze("the swimmers are training hard for the championship season", nil)
	if !ok {
		t.Fatal("filtered")
	}
	if a.Terms["swimmers"] == 0 {
		t.Errorf("unstemmed term missing: %v", a.Terms)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	p := New(Options{})
	text := "Just finished 30min freestyle training at the swimming pool, michael phelps is my hero"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Analyze(text, nil)
	}
}
