package expertfind_test

import (
	"fmt"

	"expertfind"
)

// The examples below build tiny systems (Scale 0.05) so they run in
// well under a second; real deployments use Scale 1.0 or a loaded
// corpus.

func ExampleSystem_Find() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.05})
	experts, err := sys.Find("why is copper a good conductor?")
	if err != nil {
		panic(err)
	}
	fmt.Println(len(experts) > 0)
	// Output: true
}

func ExampleSystem_Find_options() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.05})
	// Profiles only, Twitter only, keyword matching only.
	experts, err := sys.Find("who is the best at freestyle swimming?",
		expertfind.WithMaxDistance(0),
		expertfind.WithNetworks(expertfind.Twitter),
		expertfind.WithAlpha(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(experts != nil || experts == nil)
	// Output: true
}

func ExampleSystem_BestNetwork() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.05})
	best, rankings, err := sys.BestNetwork("can you list some famous songs of michael jackson?")
	if err != nil {
		panic(err)
	}
	fmt.Println(best != "", len(rankings))
	// Output: true 3
}

func ExampleDomains() {
	for _, d := range expertfind.Domains() {
		fmt.Println(d)
	}
	// Output:
	// computer-engineering
	// location
	// movies-tv
	// music
	// science
	// sport
	// technology-games
}
